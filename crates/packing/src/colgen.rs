//! Column generation for the cutting-stock LP relaxation.
//!
//! The paper (§5.3): *"The above integer linear program can be solved by
//! using column generation and branch-and-bound \[25\]. The technique is
//! very efficient as it does not need to generate all feasible patterns
//! at the beginning. Instead, it starts with a few patterns and generates
//! more patterns as needed."*
//!
//! We solve the master LP by *dualizing*: the dual
//! `max Σⱼ cⱼyⱼ s.t. Σⱼ aᵢⱼyⱼ ≤ 1 ∀i, y ≥ 0` has non-negative
//! right-hand sides, so the all-slack basis is feasible for our
//! [`simplex`](crate::simplex) solver, and each generated pattern is just
//! a new dual constraint. Strong duality recovers the master objective,
//! the dual solution `y` feeds the pricing knapsack, and the shadow
//! prices of the dual rows are exactly the master's pattern counts `xᵢ`.

use crate::knapsack::best_pattern;
use crate::pattern::Pattern;
use crate::simplex::solve_max;
use crowder_types::{Error, Result};

/// The solved LP relaxation of the cutting-stock master problem.
#[derive(Debug, Clone)]
pub struct LpMaster {
    /// Patterns generated so far (columns of the master).
    pub patterns: Vec<Pattern>,
    /// Fractional usage `xᵢ` of each pattern.
    pub usage: Vec<f64>,
    /// LP optimum `Σ xᵢ` — a valid lower bound on the integer optimum.
    pub objective: f64,
    /// Final dual prices per size class.
    pub duals: Vec<f64>,
    /// Pricing rounds performed.
    pub rounds: usize,
}

impl LpMaster {
    /// `⌈objective⌉` with a small tolerance — the usable integer lower
    /// bound.
    pub fn integer_lower_bound(&self) -> usize {
        (self.objective - 1e-6).ceil().max(0.0) as usize
    }
}

/// Solve the LP relaxation of `min Σxᵢ s.t. Σᵢ aᵢⱼxᵢ ≥ demands[j-1]` over
/// all feasible patterns for `capacity`, generating columns on demand.
///
/// `demands[j-1]` is the number of components of size `j` (the paper's
/// `cⱼ`). Sizes above `capacity` with non-zero demand are infeasible.
pub fn solve_lp_relaxation(demands: &[u64], capacity: usize) -> Result<LpMaster> {
    if capacity == 0 {
        return Err(Error::InvalidConfig {
            param: "capacity",
            message: "cluster-size threshold must be positive".into(),
        });
    }
    for (idx, &d) in demands.iter().enumerate() {
        if d > 0 && idx + 1 > capacity {
            return Err(Error::Infeasible(format!(
                "component of size {} exceeds cluster-size threshold {capacity}",
                idx + 1
            )));
        }
    }
    let active: Vec<usize> = demands
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d > 0)
        .map(|(idx, _)| idx + 1)
        .collect();
    if active.is_empty() {
        return Ok(LpMaster {
            patterns: Vec::new(),
            usage: Vec::new(),
            objective: 0.0,
            duals: vec![0.0; demands.len()],
            rounds: 0,
        });
    }

    // Initial columns: for each demanded size j, the homogeneous pattern
    // with ⌊k/j⌋ copies — always feasible, and together they cover every
    // demand, so the master LP starts feasible.
    let mut patterns: Vec<Pattern> = Vec::new();
    for &size in &active {
        let copies = (capacity / size) as u32;
        let mut counts = vec![0u32; demands.len()];
        counts[size - 1] = copies;
        patterns.push(Pattern::new(counts, capacity).expect("homogeneous pattern fits"));
    }

    let c_obj: Vec<f64> = demands.iter().map(|&d| d as f64).collect();
    let mut rounds = 0usize;
    // Column generation loop. Each round solves the dual LP whose rows
    // are the current patterns, then prices a new pattern on the duals.
    loop {
        rounds += 1;
        let a: Vec<Vec<f64>> = patterns
            .iter()
            .map(|p| p.counts().iter().map(|&v| f64::from(v)).collect())
            .collect();
        let b = vec![1.0; patterns.len()];
        let sol = solve_max(&a, &b, &c_obj)?;
        // Price: most valuable feasible pattern under prices y.
        let improving = best_pattern(&sol.primal, capacity)
            .filter(|(_, value)| *value > 1.0 + 1e-7)
            .map(|(p, _)| p);
        match improving {
            Some(p) if !patterns.contains(&p) && rounds < 10_000 => patterns.push(p),
            _ => {
                return Ok(LpMaster {
                    usage: sol.duals,
                    objective: sol.objective,
                    duals: sol.primal,
                    rounds,
                    patterns,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_section53_lp_bound_is_three() {
        // Demands c = [0, 2, 0, 2] (two SCCs of size 2, two of size 4),
        // k = 4. The paper's optimal integer packing is 3 HITs; the LP
        // bound here is exactly 3.0.
        let lp = solve_lp_relaxation(&[0, 2, 0, 2], 4).unwrap();
        assert!(
            (lp.objective - 3.0).abs() < 1e-6,
            "objective {}",
            lp.objective
        );
        assert_eq!(lp.integer_lower_bound(), 3);
    }

    #[test]
    fn zero_demands_cost_nothing() {
        let lp = solve_lp_relaxation(&[0, 0, 0], 5).unwrap();
        assert_eq!(lp.objective, 0.0);
        assert_eq!(lp.integer_lower_bound(), 0);
        assert!(lp.patterns.is_empty());
    }

    #[test]
    fn oversized_demand_is_infeasible() {
        let r = solve_lp_relaxation(&[0, 0, 0, 0, 1], 4); // size-5 item, k=4
        assert!(matches!(r, Err(Error::Infeasible(_))));
        assert!(solve_lp_relaxation(&[1], 0).is_err());
    }

    #[test]
    fn uniform_items_match_volume_bound() {
        // 10 items of size 3 into capacity 9: LP = 10·3/9 = 10/3.
        let lp = solve_lp_relaxation(&[0, 0, 10], 9).unwrap();
        assert!((lp.objective - 10.0 / 3.0).abs() < 1e-6);
        assert_eq!(lp.integer_lower_bound(), 4);
    }

    #[test]
    fn usage_covers_demands_fractionally() {
        let demands = [3u64, 4, 2, 1, 0, 2];
        let capacity = 7;
        let lp = solve_lp_relaxation(&demands, capacity).unwrap();
        for (j, &d) in demands.iter().enumerate() {
            let covered: f64 = lp
                .patterns
                .iter()
                .zip(&lp.usage)
                .map(|(p, &x)| f64::from(p.counts()[j]) * x)
                .sum();
            assert!(
                covered + 1e-6 >= d as f64,
                "size {} covered {covered} < demand {d}",
                j + 1
            );
        }
    }

    proptest! {
        #[test]
        fn lp_bound_sandwiched_between_volume_and_ffd(
            demands in proptest::collection::vec(0u64..6, 1..8),
            capacity in 8usize..=16,
        ) {
            let lp = solve_lp_relaxation(&demands, capacity).unwrap();
            let volume: u64 = demands
                .iter()
                .enumerate()
                .map(|(idx, &d)| (idx as u64 + 1) * d)
                .sum();
            let volume_lb = volume as f64 / capacity as f64;
            prop_assert!(lp.objective >= volume_lb - 1e-6,
                "LP {} below volume bound {volume_lb}", lp.objective);

            // FFD is an integer feasible solution, so LP ≤ FFD.
            let mut sizes = Vec::new();
            for (idx, &d) in demands.iter().enumerate() {
                for _ in 0..d {
                    sizes.push(idx + 1);
                }
            }
            let ffd = crate::ffd::first_fit_decreasing(&sizes, capacity).unwrap();
            prop_assert!(lp.objective <= ffd.len() as f64 + 1e-6);
        }
    }
}

//! HIT patterns — the columns of the cutting-stock program.

use crowder_types::{Error, Result};

/// A cluster-based HIT pattern `p = [a₁, …, a_k]`: `counts[j-1]` is the
/// number of packed components containing `j` records (paper §5.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    counts: Vec<u32>,
}

impl Pattern {
    /// Build a pattern for capacity `capacity`; `counts[j-1]` items of
    /// size `j`. Fails if the pattern is infeasible (`Σ j·a_j > k`) or
    /// empty.
    pub fn new(counts: Vec<u32>, capacity: usize) -> Result<Self> {
        let p = Pattern { counts };
        let used = p.used_capacity();
        if used == 0 {
            return Err(Error::InvalidConfig {
                param: "pattern",
                message: "pattern must contain at least one item".into(),
            });
        }
        if used > capacity {
            return Err(Error::InvalidConfig {
                param: "pattern",
                message: format!("pattern uses {used} > capacity {capacity}"),
            });
        }
        Ok(p)
    }

    /// Pattern with a single item of size `size`.
    pub fn singleton(size: usize, num_classes: usize) -> Self {
        let mut counts = vec![0u32; num_classes];
        counts[size - 1] = 1;
        Pattern { counts }
    }

    /// `counts[j-1]` — items of size `j`.
    #[inline]
    pub fn count_of(&self, size: usize) -> u32 {
        self.counts.get(size - 1).copied().unwrap_or(0)
    }

    /// The raw count vector.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Total records used: `Σ j·a_j`.
    pub fn used_capacity(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .map(|(idx, &c)| (idx + 1) * c as usize)
            .sum()
    }

    /// Total number of items (components) in the pattern: `Σ a_j`.
    pub fn item_count(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// Is this pattern *maximal* given `capacity` and the remaining
    /// `demands`? Maximal means no further demanded item fits in the
    /// leftover capacity. Bin-count minimization admits an optimal
    /// solution using only maximal bins, which the branch-and-bound
    /// exploits to shrink its search space.
    pub fn is_maximal(&self, capacity: usize, demands: &[u64]) -> bool {
        let slack = capacity - self.used_capacity();
        for (idx, &d) in demands.iter().enumerate() {
            let size = idx + 1;
            if size <= slack && d > u64::from(self.count_of(size)) {
                return false;
            }
        }
        true
    }
}

/// Enumerate *all* feasible patterns for `capacity` whose per-size counts
/// never exceed `demands` (sizes with zero demand are excluded — the
/// paper's §5.3 example makes the same reduction: "since c₁ = 0 and
/// c₃ = 0, we omit the feasible patterns whose first or third dimension
/// contains non-zero values").
///
/// Used by tests and by the exact solver for small capacities; column
/// generation exists precisely so the LP never needs this full set.
pub fn enumerate_patterns(capacity: usize, demands: &[u64]) -> Vec<Pattern> {
    let num_classes = demands.len();
    let mut out = Vec::new();
    let mut counts = vec![0u32; num_classes];
    // Recurse over sizes from largest to smallest.
    fn rec(
        size: usize,
        remaining: usize,
        counts: &mut Vec<u32>,
        demands: &[u64],
        out: &mut Vec<Pattern>,
    ) {
        if size == 0 {
            if counts.iter().any(|&c| c > 0) {
                out.push(Pattern {
                    counts: counts.clone(),
                });
            }
            return;
        }
        let max_fit = (remaining / size) as u64;
        let max_count = max_fit.min(demands[size - 1]) as u32;
        for c in 0..=max_count {
            counts[size - 1] = c;
            rec(
                size - 1,
                remaining - size * c as usize,
                counts,
                demands,
                out,
            );
        }
        counts[size - 1] = 0;
    }
    let start = num_classes.min(capacity);
    rec(start, capacity, &mut counts, demands, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_feasibility_example() {
        // §5.3: with k = 4, p₁ = [0,0,0,1] is feasible (4 ≤ 4).
        let p = Pattern::new(vec![0, 0, 0, 1], 4).unwrap();
        assert_eq!(p.used_capacity(), 4);
        assert_eq!(p.item_count(), 1);
        assert_eq!(p.count_of(4), 1);
    }

    #[test]
    fn infeasible_and_empty_patterns_rejected() {
        assert!(Pattern::new(vec![0, 0, 0, 2], 4).is_err()); // 8 > 4
        assert!(Pattern::new(vec![0, 0, 0, 0], 4).is_err()); // empty
        assert!(Pattern::new(vec![5, 0], 4).is_err()); // 5 > 4
    }

    #[test]
    fn paper_section53_pattern_set() {
        // §5.3 example: SCC sizes {4, 4, 2, 2} with k = 4 give demands
        // c = [0, 2, 0, 2]; the paper lists exactly three feasible
        // patterns: [0,0,0,1], [0,2,0,0], [0,1,0,0].
        let demands = vec![0u64, 2, 0, 2];
        let mut pats = enumerate_patterns(4, &demands);
        pats.sort_by_key(|p| p.counts().to_vec());
        let expect: Vec<Vec<u32>> = vec![vec![0, 0, 0, 1], vec![0, 1, 0, 0], vec![0, 2, 0, 0]];
        let got: Vec<Vec<u32>> = pats.iter().map(|p| p.counts().to_vec()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn maximality() {
        let demands = vec![0u64, 2, 0, 2];
        // [0,1,0,0] uses 2 of 4; another size-2 item is demanded and fits
        // → not maximal.
        let p = Pattern::new(vec![0, 1, 0, 0], 4).unwrap();
        assert!(!p.is_maximal(4, &demands));
        // [0,2,0,0] uses 4 of 4 → maximal.
        let p = Pattern::new(vec![0, 2, 0, 0], 4).unwrap();
        assert!(p.is_maximal(4, &demands));
        // [0,0,0,1] uses 4 of 4 → maximal.
        let p = Pattern::new(vec![0, 0, 0, 1], 4).unwrap();
        assert!(p.is_maximal(4, &demands));
    }

    #[test]
    fn singleton_pattern() {
        let p = Pattern::singleton(3, 5);
        assert_eq!(p.counts(), &[0, 0, 1, 0, 0]);
        assert_eq!(p.used_capacity(), 3);
    }

    #[test]
    fn enumeration_respects_demands() {
        // Only one item of size 1 demanded; patterns never use two.
        let pats = enumerate_patterns(3, &[1, 0, 0]);
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].counts(), &[1, 0, 0]);
    }

    #[test]
    fn enumeration_counts_small_case() {
        // capacity 3, unlimited demands of sizes 1..3:
        // [1,0,0] [2,0,0] [3,0,0] [0,1,0] [1,1,0] [0,0,1] → 6 patterns.
        let pats = enumerate_patterns(3, &[10, 10, 10]);
        assert_eq!(pats.len(), 6);
    }
}

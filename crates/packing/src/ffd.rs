//! First-fit decreasing — the classical bin-packing heuristic.
//!
//! FFD seeds the branch-and-bound incumbent and serves as the packing
//! ablation baseline ("what if the bottom tier skipped the ILP?"). It is
//! guaranteed to use at most `11/9·OPT + 2/3` bins.

use crowder_types::{Error, Result};

/// Pack items (given by their sizes) into bins of `capacity` using
/// first-fit decreasing. Returns bins as lists of *item indices* into
/// `sizes`.
///
/// Fails if any item exceeds the capacity or the capacity is zero.
pub fn first_fit_decreasing(sizes: &[usize], capacity: usize) -> Result<Vec<Vec<usize>>> {
    if capacity == 0 {
        return Err(Error::InvalidConfig {
            param: "capacity",
            message: "bin capacity must be positive".into(),
        });
    }
    if let Some(&too_big) = sizes.iter().find(|&&s| s > capacity) {
        return Err(Error::Infeasible(format!(
            "item of size {too_big} exceeds bin capacity {capacity}"
        )));
    }
    // Sort item indices by decreasing size; ties by index for determinism.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));

    let mut bins: Vec<Vec<usize>> = Vec::new();
    let mut free: Vec<usize> = Vec::new(); // remaining capacity per bin
    for idx in order {
        let size = sizes[idx];
        if size == 0 {
            // Zero-sized items (empty components) go into the first bin
            // (creating one if needed) without consuming capacity.
            if bins.is_empty() {
                bins.push(Vec::new());
                free.push(capacity);
            }
            bins[0].push(idx);
            continue;
        }
        match free.iter().position(|&f| f >= size) {
            Some(b) => {
                bins[b].push(idx);
                free[b] -= size;
            }
            None => {
                bins.push(vec![idx]);
                free.push(capacity - size);
            }
        }
    }
    Ok(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input_no_bins() {
        assert!(first_fit_decreasing(&[], 10).unwrap().is_empty());
    }

    #[test]
    fn paper_section53_instance() {
        // SCC sizes {4, 4, 2, 2}, k = 4: FFD finds the optimal 3 bins
        // ({4}, {4}, {2,2}) that the paper reports.
        let bins = first_fit_decreasing(&[4, 4, 2, 2], 4).unwrap();
        assert_eq!(bins.len(), 3);
        let total: usize = bins.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn oversized_item_is_infeasible() {
        assert!(matches!(
            first_fit_decreasing(&[5], 4),
            Err(Error::Infeasible(_))
        ));
        assert!(first_fit_decreasing(&[1], 0).is_err());
    }

    #[test]
    fn perfect_fit() {
        let bins = first_fit_decreasing(&[3, 3, 2, 2, 2], 6).unwrap();
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn zero_sized_items_do_not_consume_capacity() {
        let bins = first_fit_decreasing(&[0, 0, 4], 4).unwrap();
        let total: usize = bins.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        for bin in &bins {
            let used: usize = bin.iter().map(|&i| [0usize, 0, 4][i]).sum();
            assert!(used <= 4);
        }
    }

    proptest! {
        #[test]
        fn bins_respect_capacity_and_cover_items(
            sizes in proptest::collection::vec(1usize..=10, 0..60),
            capacity in 10usize..=20,
        ) {
            let bins = first_fit_decreasing(&sizes, capacity).unwrap();
            let mut seen: Vec<usize> = bins.iter().flatten().copied().collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..sizes.len()).collect();
            prop_assert_eq!(seen, expect); // every item exactly once
            for bin in &bins {
                let used: usize = bin.iter().map(|&i| sizes[i]).sum();
                prop_assert!(used <= capacity);
                prop_assert!(!bin.is_empty());
            }
        }

        #[test]
        fn never_worse_than_trivial_bound(
            sizes in proptest::collection::vec(1usize..=10, 1..60),
        ) {
            let capacity = 10usize;
            let bins = first_fit_decreasing(&sizes, capacity).unwrap();
            // FFD is at most the item count, and at least the volume bound.
            let volume: usize = sizes.iter().sum();
            let lb = volume.div_ceil(capacity);
            prop_assert!(bins.len() >= lb);
            prop_assert!(bins.len() <= sizes.len());
        }
    }
}

//! The pricing problem of column generation.
//!
//! Given the master LP's dual prices `y_j` (the marginal value of
//! covering one more component of size `j`), the most improving new
//! pattern maximizes `Σ_j y_j·a_j` subject to `Σ_j j·a_j ≤ k` — an
//! unbounded integer knapsack over the size classes. A pattern prices
//! out (improves the LP) iff its value exceeds its unit cost, 1.

use crate::pattern::Pattern;

/// Solve the pricing knapsack: maximize `Σ y[j-1]·a_j` over feasible
/// patterns for `capacity`. Returns the best pattern and its value, or
/// `None` if every size class has non-positive price (the only optimum
/// is the empty pattern).
///
/// Classic O(k²) dynamic program over capacities with parent pointers.
pub fn best_pattern(duals: &[f64], capacity: usize) -> Option<(Pattern, f64)> {
    let num_classes = duals.len().min(capacity);
    if num_classes == 0 {
        return None;
    }
    // dp[w] = best value achievable with exactly ≤ w capacity;
    // choice[w] = size of the last item added to reach dp[w].
    let mut dp = vec![0.0f64; capacity + 1];
    let mut choice = vec![0usize; capacity + 1];
    for w in 1..=capacity {
        // `size 0` marks "leave this capacity unit empty" (carry w-1).
        let mut best_val = dp[w - 1];
        let mut best_sz = 0usize;
        for size in 1..=num_classes.min(w) {
            let val = dp[w - size] + duals[size - 1];
            if val > best_val + 1e-12 {
                best_val = val;
                best_sz = size;
            }
        }
        dp[w] = best_val;
        choice[w] = best_sz;
    }
    if dp[capacity] <= 1e-12 {
        return None;
    }
    // Reconstruct counts.
    let mut counts = vec![0u32; duals.len()];
    let mut w = capacity;
    while w > 0 {
        let sz = choice[w];
        if sz == 0 {
            w -= 1;
        } else {
            counts[sz - 1] += 1;
            w -= sz;
        }
    }
    let value = dp[capacity];
    let pattern = Pattern::new(counts, capacity).expect("DP respects capacity");
    Some((pattern, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_highest_density_items() {
        // Sizes 1..4 with prices: size 2 has the best value/size ratio.
        let duals = [0.1, 0.9, 0.5, 0.6];
        let (p, v) = best_pattern(&duals, 4).unwrap();
        assert_eq!(p.count_of(2), 2);
        assert!((v - 1.8).abs() < 1e-9);
    }

    #[test]
    fn mixes_sizes_when_optimal() {
        // capacity 5: one size-3 (value 1.0) + one size-2 (0.9) = 1.9
        // beats two size-2 (1.8) + size-1 (0.0).
        let duals = [0.0, 0.9, 1.0];
        let (p, v) = best_pattern(&duals, 5).unwrap();
        assert_eq!(p.count_of(3), 1);
        assert_eq!(p.count_of(2), 1);
        assert!((v - 1.9).abs() < 1e-9);
    }

    #[test]
    fn all_zero_prices_yield_none() {
        assert!(best_pattern(&[0.0, 0.0], 4).is_none());
        assert!(best_pattern(&[], 4).is_none());
        assert!(best_pattern(&[1.0], 0).is_none());
    }

    #[test]
    fn negative_prices_are_never_packed() {
        let duals = [-1.0, 0.5, -0.3];
        let (p, _) = best_pattern(&duals, 6).unwrap();
        assert_eq!(p.count_of(1), 0);
        assert_eq!(p.count_of(3), 0);
        assert_eq!(p.count_of(2), 3);
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(
            duals in proptest::collection::vec(0.0f64..2.0, 1..5),
            capacity in 1usize..=8,
        ) {
            // Brute-force over all feasible patterns.
            let demands = vec![u64::MAX; duals.len()];
            let all = crate::pattern::enumerate_patterns(capacity, &demands);
            let brute = all
                .iter()
                .map(|p| {
                    p.counts()
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| duals[i] * c as f64)
                        .sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            let dp = best_pattern(&duals, capacity).map_or(0.0, |(_, v)| v);
            prop_assert!((dp - brute).abs() < 1e-7, "dp={dp} brute={brute}");
        }

        #[test]
        fn result_is_always_feasible(
            duals in proptest::collection::vec(-1.0f64..2.0, 1..8),
            capacity in 1usize..=20,
        ) {
            if let Some((p, v)) = best_pattern(&duals, capacity) {
                prop_assert!(p.used_capacity() <= capacity);
                prop_assert!(v > 0.0);
            }
        }
    }
}

//! Exact branch-and-bound for the cutting-stock integer program.
//!
//! Used when the LP lower bound and the FFD incumbent disagree — the rare
//! case where heuristics cannot already certify optimality. The search is
//! a *bin-completion* style branch-and-bound (branch on the full pattern
//! of the next bin) restricted to patterns that are (a) within the
//! remaining demands, (b) contain the largest remaining size class
//! (symmetry breaking: some bin must hold that item), and (c) *maximal*
//! (a dominance rule: any packing can be rewritten so every bin is
//! maximal without increasing the bin count).

use crate::pattern::Pattern;
use std::collections::HashMap;

/// Outcome of the exact search.
#[derive(Debug, Clone)]
pub struct BbOutcome {
    /// Patterns of the best packing found, one entry per bin.
    pub bins: Vec<Pattern>,
    /// True iff the search ran to completion (the result is optimal);
    /// false iff the node budget was exhausted first.
    pub proven_optimal: bool,
    /// Nodes expanded.
    pub nodes: usize,
}

struct Searcher {
    capacity: usize,
    lower_bound: usize,
    node_budget: usize,
    nodes: usize,
    best: Vec<Pattern>,
    /// Demand vectors already expanded at a bin count ≤ the recorded
    /// value; revisiting them cannot improve the incumbent.
    seen: HashMap<Vec<u64>, usize>,
    exhausted_budget: bool,
}

impl Searcher {
    /// Enumerate the candidate patterns for the next bin: must include at
    /// least one item of the largest demanded size, stay within demands,
    /// and be maximal.
    fn candidate_patterns(&self, demands: &[u64]) -> Vec<Pattern> {
        let Some(largest_idx) = demands.iter().rposition(|&d| d > 0) else {
            return Vec::new();
        };
        let largest = largest_idx + 1;
        let mut out = Vec::new();
        let mut counts = vec![0u32; demands.len()];
        // The bin takes ≥ 1 item of `largest`.
        counts[largest_idx] = 1;
        let remaining = self.capacity - largest;
        self.extend(largest, remaining, demands, &mut counts, &mut out);
        out
    }

    /// Recursive completion over sizes ≤ `max_size`.
    fn extend(
        &self,
        max_size: usize,
        remaining: usize,
        demands: &[u64],
        counts: &mut Vec<u32>,
        out: &mut Vec<Pattern>,
    ) {
        if max_size == 0 {
            let p = Pattern::new(counts.clone(), self.capacity).expect("search respects capacity");
            if p.is_maximal(self.capacity, demands) {
                out.push(p);
            }
            return;
        }
        let idx = max_size - 1;
        let already = u64::from(counts[idx]);
        let max_extra =
            ((remaining / max_size) as u64).min(demands[idx].saturating_sub(already)) as u32;
        for extra in (0..=max_extra).rev() {
            counts[idx] += extra;
            self.extend(
                max_size - 1,
                remaining - max_size * extra as usize,
                demands,
                counts,
                out,
            );
            counts[idx] -= extra;
        }
    }

    fn search(&mut self, demands: &mut Vec<u64>, used: &mut Vec<Pattern>) {
        if self.nodes >= self.node_budget {
            self.exhausted_budget = true;
            return;
        }
        self.nodes += 1;

        let total: u64 = demands
            .iter()
            .enumerate()
            .map(|(idx, &d)| (idx as u64 + 1) * d)
            .sum();
        if total == 0 {
            if used.len() < self.best.len() {
                self.best = used.clone();
            }
            return;
        }
        // Volume bound prune.
        let lb = used.len() + (total as usize).div_ceil(self.capacity);
        if lb >= self.best.len() {
            return;
        }
        // Memoization prune: same residual demands reached with fewer or
        // equal bins before.
        if let Some(&prev) = self.seen.get(demands.as_slice()) {
            if prev <= used.len() {
                return;
            }
        }
        self.seen.insert(demands.clone(), used.len());

        for pattern in self.candidate_patterns(demands) {
            for (idx, &c) in pattern.counts().iter().enumerate() {
                demands[idx] -= u64::from(c);
            }
            used.push(pattern.clone());
            self.search(demands, used);
            used.pop();
            for (idx, &c) in pattern.counts().iter().enumerate() {
                demands[idx] += u64::from(c);
            }
            // Early exit once the incumbent matches the global lower bound.
            if self.best.len() <= self.lower_bound || self.exhausted_budget {
                return;
            }
        }
    }
}

/// Run branch-and-bound for demands `demands` (per size class `1..=len`)
/// and bin `capacity`.
///
/// * `incumbent` — a feasible packing (e.g. from FFD) seeding the upper
///   bound; the result is never worse.
/// * `lower_bound` — a proven lower bound (e.g. `⌈LP⌉`); the search stops
///   as soon as it is met.
/// * `node_budget` — cap on expanded nodes; when exhausted the best
///   packing found so far is returned with `proven_optimal = false`.
pub fn branch_and_bound(
    demands: &[u64],
    capacity: usize,
    incumbent: Vec<Pattern>,
    lower_bound: usize,
    node_budget: usize,
) -> BbOutcome {
    let mut searcher = Searcher {
        capacity,
        lower_bound,
        node_budget,
        nodes: 0,
        best: incumbent,
        seen: HashMap::new(),
        exhausted_budget: false,
    };
    let mut work = demands.to_vec();
    let mut used = Vec::new();
    searcher.search(&mut work, &mut used);
    let optimal = !searcher.exhausted_budget || searcher.best.len() <= searcher.lower_bound;
    BbOutcome {
        bins: searcher.best,
        proven_optimal: optimal,
        nodes: searcher.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colgen::solve_lp_relaxation;
    use crate::ffd::first_fit_decreasing;
    use proptest::prelude::*;

    /// Helper: run FFD and convert its bins into patterns.
    fn ffd_patterns(demands: &[u64], capacity: usize) -> Vec<Pattern> {
        let mut sizes = Vec::new();
        for (idx, &d) in demands.iter().enumerate() {
            for _ in 0..d {
                sizes.push(idx + 1);
            }
        }
        first_fit_decreasing(&sizes, capacity)
            .unwrap()
            .into_iter()
            .map(|bin| {
                let mut counts = vec![0u32; demands.len()];
                for i in bin {
                    counts[sizes[i] - 1] += 1;
                }
                Pattern::new(counts, capacity).unwrap()
            })
            .collect()
    }

    fn solve(demands: &[u64], capacity: usize) -> BbOutcome {
        let incumbent = ffd_patterns(demands, capacity);
        let lp = solve_lp_relaxation(demands, capacity).unwrap();
        branch_and_bound(
            demands,
            capacity,
            incumbent,
            lp.integer_lower_bound(),
            1_000_000,
        )
    }

    #[test]
    fn paper_example_needs_three_bins() {
        let out = solve(&[0, 2, 0, 2], 4);
        assert_eq!(out.bins.len(), 3);
        assert!(out.proven_optimal);
    }

    #[test]
    fn classic_ffd_suboptimal_instance() {
        // Sizes {6×3, 6×2, 6×2}... use the known FFD-suboptimal family:
        // items [4,4,4,4,4,4,3,3,3,3,3,3,2,2,2,2,2,2] capacity 9 — FFD
        // gives 5 bins; optimal is 4? Volume = 54/9 = 6... Use a simpler
        // verified case instead: items {3,3,2,2,2} capacity 6: FFD gives
        // [3,3],[2,2,2] = 2 bins (optimal). Check B&B agrees.
        let out = solve(&[0, 3, 2], 6);
        assert_eq!(out.bins.len(), 2);
        assert!(out.proven_optimal);
    }

    #[test]
    fn empty_demands_need_no_bins() {
        let out = solve(&[0, 0, 0], 5);
        assert_eq!(out.bins.len(), 0);
        assert!(out.proven_optimal);
    }

    #[test]
    fn bins_cover_exact_demands() {
        let demands = [2u64, 3, 1, 0, 2];
        let out = solve(&demands, 8);
        let mut covered = vec![0u64; demands.len()];
        for bin in &out.bins {
            for (idx, &c) in bin.counts().iter().enumerate() {
                covered[idx] += u64::from(c);
            }
        }
        // Bin-completion uses each item exactly once: coverage == demand.
        assert_eq!(covered, demands);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn bb_is_within_bounds_and_feasible(
            demands in proptest::collection::vec(0u64..5, 1..6),
            capacity in 6usize..=12,
        ) {
            let lp = solve_lp_relaxation(&demands, capacity).unwrap();
            let out = solve(&demands, capacity);
            prop_assert!(out.bins.len() >= lp.integer_lower_bound());
            let ffd = ffd_patterns(&demands, capacity);
            prop_assert!(out.bins.len() <= ffd.len());
            for bin in &out.bins {
                prop_assert!(bin.used_capacity() <= capacity);
            }
            if out.proven_optimal && !demands.iter().all(|&d| d == 0) {
                // Optimality: cannot beat the volume bound.
                let volume: u64 = demands.iter().enumerate()
                    .map(|(idx, &d)| (idx as u64 + 1) * d).sum();
                prop_assert!(out.bins.len() as u64 >= volume.div_ceil(capacity as u64));
            }
        }
    }
}

//! Criterion micro-benchmarks of the machine-pass strategies: exhaustive
//! parallel all-pairs vs prefix-filter join vs token blocking — each in
//! its interned-id form and, for the first two, the pre-interning
//! string-based baseline (`crowder_bench::baseline`) for before/after
//! comparison of the rewrite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowder::prelude::*;
use crowder_bench::baseline::{all_pairs_scored_strings, prefix_join_strings};
use crowder_simjoin::{prefix_join, token_blocking_pairs};
use std::hint::black_box;

fn simjoin_bench(c: &mut Criterion) {
    let dataset = restaurant(&RestaurantConfig::default());
    let tokens = TokenTable::build(&dataset);

    let mut group = c.benchmark_group("similarity_join");
    group.sample_size(10);
    for thr in [0.5, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("all_pairs_parallel", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored(&dataset, &tokens, thr, 0))),
        );
        group.bench_with_input(
            BenchmarkId::new("all_pairs_single_thread", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored(&dataset, &tokens, thr, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("all_pairs_strings_baseline", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored_strings(&dataset, &tokens, thr, 0))),
        );
        group.bench_with_input(BenchmarkId::new("prefix_join", thr), &thr, |b, &thr| {
            b.iter(|| black_box(prefix_join(&dataset, &tokens, thr, 0)))
        });
        group.bench_with_input(
            BenchmarkId::new("prefix_join_single_thread", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(prefix_join(&dataset, &tokens, thr, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("prefix_join_strings_baseline", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(prefix_join_strings(&dataset, &tokens, thr))),
        );
        group.bench_with_input(BenchmarkId::new("token_blocking", thr), &thr, |b, &thr| {
            b.iter(|| black_box(token_blocking_pairs(&dataset, &tokens, thr, 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, simjoin_bench);
criterion_main!(benches);

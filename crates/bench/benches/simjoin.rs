//! Criterion micro-benchmarks of the machine-pass strategies: exhaustive
//! parallel all-pairs vs PPJoin+ prefix join vs token blocking — each in
//! its interned-id form and, for the first two, the pre-interning
//! string-based baseline (`crowder_bench::baseline`) for before/after
//! comparison of the rewrite.
//!
//! After the timed groups, the bench writes a machine-readable report
//! through `crowder_bench::perf` (quick scope) to
//! `BENCH_simjoin.quick.json` at the workspace root — deliberately NOT
//! the tracked `BENCH_simjoin.json`, which holds the full-scope numbers
//! from the `bench_simjoin` binary and must not be clobbered by a
//! restaurant-only refresh. Set `BENCH_SIMJOIN_OUT` to redirect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowder::prelude::*;
use crowder_bench::baseline::{all_pairs_scored_strings, prefix_join_strings};
use crowder_bench::perf;
use std::hint::black_box;

fn simjoin_bench(c: &mut Criterion) {
    let dataset = restaurant(&RestaurantConfig::default());
    // The string baselines need the raw token sets that production
    // tables no longer retain.
    let tokens = TokenTable::build_with_sets(&dataset);

    let mut group = c.benchmark_group("similarity_join");
    group.sample_size(10);
    for thr in [0.5, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("all_pairs_parallel", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored(&dataset, &tokens, thr, 0))),
        );
        group.bench_with_input(
            BenchmarkId::new("all_pairs_single_thread", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored(&dataset, &tokens, thr, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("all_pairs_strings_baseline", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(all_pairs_scored_strings(&dataset, &tokens, thr, 0))),
        );
        group.bench_with_input(BenchmarkId::new("prefix_join", thr), &thr, |b, &thr| {
            b.iter(|| black_box(prefix_join(&dataset, &tokens, thr, 0)))
        });
        group.bench_with_input(
            BenchmarkId::new("prefix_join_single_thread", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(prefix_join(&dataset, &tokens, thr, 1))),
        );
        group.bench_with_input(
            BenchmarkId::new("prefix_join_strings_baseline", thr),
            &thr,
            |b, &thr| b.iter(|| black_box(prefix_join_strings(&dataset, &tokens, thr))),
        );
        group.bench_with_input(BenchmarkId::new("token_blocking", thr), &thr, |b, &thr| {
            b.iter(|| black_box(token_blocking_pairs(&dataset, &tokens, thr, 0, 0)))
        });
    }
    group.finish();

    // Write the quick machine-readable report (restaurant only, few
    // samples) next to — never over — the tracked full-scope report,
    // which only the bench_simjoin binary regenerates. Bench binaries
    // run with the crate as cwd, so anchor the path at the workspace
    // root.
    let out = std::env::var("BENCH_SIMJOIN_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../{}",
            env!("CARGO_MANIFEST_DIR"),
            perf::QUICK_REPORT_PATH
        )
    });
    match perf::write_report(&out, perf::SuiteScope::Quick, 3) {
        Ok(_) => println!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

criterion_group!(benches, simjoin_bench);
criterion_main!(benches);

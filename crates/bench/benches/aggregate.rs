//! Criterion micro-benchmarks of answer aggregation: Dawid–Skene EM vs
//! majority vote on synthetic vote matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowder_aggregate::{majority_vote, DawidSkene, Vote};
use crowder_types::Pair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synth_votes(n_pairs: u32, workers: usize, seed: u64) -> Vec<Vote> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut votes = Vec::with_capacity(n_pairs as usize * 3);
    for i in 0..n_pairs {
        let pair = Pair::of(2 * i, 2 * i + 1);
        let is_match = rng.random::<f64>() < 0.3;
        // Three assignments from random workers with 0.9 accuracy.
        for _ in 0..3 {
            let w = rng.random_range(0..workers);
            let correct = rng.random::<f64>() < 0.9;
            votes.push((pair, w, is_match == correct));
        }
    }
    votes
}

fn aggregate_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10);
    for n in [1_000u32, 10_000] {
        let votes = synth_votes(n, 200, 7);
        group.bench_with_input(BenchmarkId::new("dawid_skene", n), &votes, |b, votes| {
            b.iter(|| black_box(DawidSkene::default().run(votes).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("majority_vote", n), &votes, |b, votes| {
            b.iter(|| black_box(majority_vote(votes)))
        });
    }
    group.finish();
}

criterion_group!(benches, aggregate_bench);
criterion_main!(benches);

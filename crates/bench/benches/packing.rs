//! Criterion micro-benchmarks of the cutting-stock bottom tier: full
//! ILP (column generation + branch-and-bound) vs FFD-only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowder_packing::{first_fit_decreasing, pack_items, solve_lp_relaxation, PackingConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// SCC-size distribution the two-tiered top tier actually produces:
/// mostly 2s and 3s with a tail up to k.
fn scc_sizes(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let roll: f64 = rng.random();
            if roll < 0.55 {
                2
            } else if roll < 0.8 {
                3
            } else {
                rng.random_range(4..=k)
            }
        })
        .collect()
}

fn packing_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutting_stock");
    group.sample_size(10);
    for n in [100usize, 1000, 5000] {
        let sizes = scc_sizes(n, 10, 42);
        group.bench_with_input(BenchmarkId::new("ilp_full", n), &sizes, |b, sizes| {
            b.iter(|| black_box(pack_items(sizes, 10, &PackingConfig::default()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ffd_only", n), &sizes, |b, sizes| {
            b.iter(|| black_box(first_fit_decreasing(sizes, 10).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("lp_relaxation", n), &sizes, |b, sizes| {
            let mut demands = vec![0u64; 10];
            for &s in sizes {
                demands[s - 1] += 1;
            }
            b.iter(|| black_box(solve_lp_relaxation(&demands, 10).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, packing_bench);
criterion_main!(benches);

//! Criterion micro-benchmarks of the five cluster-HIT generators — the
//! algorithmic core behind Figures 10/11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowder::prelude::*;
use std::hint::black_box;

fn hitgen_bench(c: &mut Criterion) {
    // Machine-pass output of a mid-sized Restaurant at τ = 0.3.
    let dataset = restaurant(&RestaurantConfig {
        unique_entities: 400,
        duplicated_entities: 80,
        seed: 1,
    });
    let tokens = TokenTable::build(&dataset);
    let pairs: Vec<Pair> = all_pairs_scored(&dataset, &tokens, 0.25, 0)
        .iter()
        .map(|s| s.pair)
        .collect();

    let mut group = c.benchmark_group("cluster_hit_generation");
    group.sample_size(10);
    let generators: Vec<Box<dyn ClusterGenerator>> = vec![
        Box::new(RandomGenerator::new(1)),
        Box::new(DfsGenerator),
        Box::new(BfsGenerator),
        Box::new(ApproxGenerator::new(1)),
        Box::new(TwoTieredGenerator::new()),
    ];
    for generator in &generators {
        group.bench_with_input(
            BenchmarkId::new(generator.name(), pairs.len()),
            &pairs,
            |b, pairs| b.iter(|| black_box(generator.generate(pairs, 10).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, hitgen_bench);
criterion_main!(benches);

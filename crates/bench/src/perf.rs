//! Machine-readable perf reports for the simjoin engine.
//!
//! Times the machine-pass strategies across (dataset, threshold,
//! algorithm, threads) and writes `BENCH_simjoin.json`, so the perf
//! trajectory is tracked across PRs instead of living in prose. The
//! report also carries the [`JoinStats`] filter funnel of `prefix_join`
//! per (dataset, threshold) — candidate counts before/after suffix
//! filtering.
//!
//! The workspace's vendored `serde` is a no-op derive stand-in, so the
//! JSON here is written and validated by hand: [`PerfReport::to_json`]
//! emits it, and [`validate_report_json`] (used by the CI smoke step)
//! parses it with a minimal recursive-descent parser and checks the
//! schema — field presence and `min ≤ median ≤ max` sanity, no timing
//! assertions.

use crowder::prelude::*;
use std::time::Instant;

/// Default output path, relative to the invocation directory (CI runs
/// from the workspace root).
pub const DEFAULT_REPORT_PATH: &str = "BENCH_simjoin.json";

/// Where the criterion bench's quick (restaurant-only) refresh lands —
/// a sibling of [`DEFAULT_REPORT_PATH`] so a routine `cargo bench` run
/// never clobbers the tracked full-scope report. Untracked (gitignored).
pub const QUICK_REPORT_PATH: &str = "BENCH_simjoin.quick.json";

/// Schema version stamped into the report; bump on breaking changes.
/// v2 added the `signature_rejected` funnel stage.
pub const SCHEMA_VERSION: u32 = 2;

/// Candidate ceiling the validator *enforces* on the Product t=0.3
/// funnel row: the adaptive-prefix tier (count filter + last-token
/// truncation) must keep the candidate count at least ~3x below the
/// ~200k the plain prefix filter admitted. Funnel counts are
/// deterministic for a given corpus and threshold — unlike timings,
/// this is machine-independent and safe to assert in CI.
pub const PRODUCT_T03_CANDIDATE_CEILING: f64 = 65_000.0;

/// One timed (dataset, threshold, algorithm, threads) cell.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Dataset name (`restaurant`, `product`).
    pub dataset: String,
    /// Jaccard threshold.
    pub threshold: f64,
    /// Algorithm label (`prefix_join`, `all_pairs`, `token_blocking`,
    /// `qgram_blocking`).
    pub algorithm: String,
    /// Worker threads requested (0 = available parallelism).
    pub threads: usize,
    /// Median wall-clock nanoseconds across samples.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Result pairs returned (sanity: equal across algorithms).
    pub pairs: usize,
}

/// The `prefix_join` filter funnel for one (dataset, threshold).
#[derive(Debug, Clone)]
pub struct FunnelEntry {
    /// Dataset name.
    pub dataset: String,
    /// Jaccard threshold.
    pub threshold: f64,
    /// Filter counters.
    pub stats: JoinStats,
}

/// A full report: timings plus filter funnels plus environment.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Available parallelism of the machine that produced the report.
    pub available_parallelism: usize,
    /// Samples per cell.
    pub iters: usize,
    /// Timed cells.
    pub entries: Vec<PerfEntry>,
    /// `prefix_join` candidate funnels.
    pub funnels: Vec<FunnelEntry>,
}

/// Which datasets a suite run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScope {
    /// Restaurant only — fast, used by the bench-harness hook and CI.
    Quick,
    /// Restaurant + Product — the numbers quoted in CHANGES.md.
    Full,
}

/// The thresholds every suite run covers.
pub const THRESHOLDS: [f64; 3] = [0.3, 0.5, 0.7];

/// Time `f` `iters` times (after one warm-up), returning
/// `(median, min, max)` nanoseconds and the result size of the last run.
fn time_fn(iters: usize, mut f: impl FnMut() -> usize) -> (u128, u128, u128, usize) {
    let mut pairs = std::hint::black_box(f());
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        pairs = std::hint::black_box(f());
        samples.push(start.elapsed().as_nanos());
    }
    let (median, min, max) = crowder_obs::stats::summarize(&mut samples);
    (median, min, max, pairs)
}

/// Run the timing suite: for each dataset and threshold, time
/// `prefix_join` and `all_pairs` at 1 thread and at the available
/// parallelism, plus single-thread `token_blocking`, and collect the
/// `prefix_join` filter funnel.
pub fn run_suite(scope: SuiteScope, iters: usize) -> PerfReport {
    let iters = iters.max(1);
    let mut datasets: Vec<(String, Dataset)> =
        vec![("restaurant".into(), crate::harness::restaurant_full())];
    if scope == SuiteScope::Full {
        datasets.push(("product".into(), crate::harness::product_full()));
    }
    let mut entries = Vec::new();
    let mut funnels = Vec::new();
    for (name, dataset) in &datasets {
        let tokens = TokenTable::build(dataset);
        for &thr in &THRESHOLDS {
            let mut push = |algorithm: &str, threads: usize, f: &mut dyn FnMut() -> usize| {
                let (median_ns, min_ns, max_ns, pairs) = time_fn(iters, f);
                entries.push(PerfEntry {
                    dataset: name.clone(),
                    threshold: thr,
                    algorithm: algorithm.into(),
                    threads,
                    median_ns,
                    min_ns,
                    max_ns,
                    samples: iters,
                    pairs,
                });
            };
            for threads in [1usize, 0] {
                push("prefix_join", threads, &mut || {
                    prefix_join(dataset, &tokens, thr, threads).len()
                });
                push("all_pairs", threads, &mut || {
                    all_pairs_scored(dataset, &tokens, thr, threads).len()
                });
            }
            push("token_blocking", 1, &mut || {
                token_blocking_pairs(dataset, &tokens, thr, 0, 1).len()
            });
            let (_, stats) = prefix_join_with_stats(dataset, &tokens, thr, 0);
            funnels.push(FunnelEntry {
                dataset: name.clone(),
                threshold: thr,
                stats,
            });
        }
    }
    PerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        iters,
        entries,
        funnels,
    }
}

// ---------------------------------------------------------------------
// JSON emission and parsing now live in `crowder_obs::json` (hoisted so
// the observability exporters and every bench report writer share one
// implementation); re-exported here so existing callers keep compiling.
// ---------------------------------------------------------------------

pub use crowder_obs::json::{json_escape, parse_json, Json, JsonReport, JsonRow};
pub use crowder_obs::stats::format_ns;

impl PerfReport {
    /// Serialize to the `BENCH_simjoin.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .num("iters", self.iters)
            .rows(
                "entries",
                self.entries.iter().map(|e| {
                    JsonRow::new()
                        .str("dataset", &e.dataset)
                        .num("threshold", e.threshold)
                        .str("algorithm", &e.algorithm)
                        .num("threads", e.threads)
                        .num("median_ns", e.median_ns)
                        .num("min_ns", e.min_ns)
                        .num("max_ns", e.max_ns)
                        .num("samples", e.samples)
                        .num("pairs", e.pairs)
                        .build()
                }),
            )
            .rows(
                "prefix_join_funnel",
                self.funnels.iter().map(|f| {
                    JsonRow::new()
                        .str("dataset", &f.dataset)
                        .num("threshold", f.threshold)
                        .num("candidates", f.stats.candidates)
                        .num("positional_pruned", f.stats.positional_pruned)
                        .num("space_pruned", f.stats.space_pruned)
                        .num("signature_rejected", f.stats.signature_rejected)
                        .num("suffix_pruned", f.stats.suffix_pruned)
                        .num("verified", f.stats.verified)
                        .num("results", f.stats.results)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable table of the timings.
    pub fn render(&self) -> String {
        let mut s = format!(
            "simjoin perf ({} samples/cell, {} core(s) available)\n{:<12} {:>5} {:<16} {:>7} {:>12} {:>12} {:>12} {:>8}\n",
            self.iters,
            self.available_parallelism,
            "dataset", "tau", "algorithm", "threads", "median", "min", "max", "pairs"
        );
        for e in &self.entries {
            s.push_str(&format!(
                "{:<12} {:>5} {:<16} {:>7} {:>12} {:>12} {:>12} {:>8}\n",
                e.dataset,
                format!("{:.1}", e.threshold),
                e.algorithm,
                e.threads,
                format_ns(e.median_ns),
                format_ns(e.min_ns),
                format_ns(e.max_ns),
                e.pairs
            ));
        }
        s.push_str(
            "\nprefix_join candidate funnel (before suffix filter = suffix_pruned + verified):\n",
        );
        for f in &self.funnels {
            s.push_str(&format!(
                "{:<12} tau {:.1}: candidates {} -> positional -{} -> space -{} -> signature -{} -> suffix -{} -> verified {} -> results {}\n",
                f.dataset,
                f.threshold,
                f.stats.candidates,
                f.stats.positional_pruned,
                f.stats.space_pruned,
                f.stats.signature_rejected,
                f.stats.suffix_pruned,
                f.stats.verified,
                f.stats.results
            ));
        }
        s
    }
}

/// Validate a `BENCH_simjoin.json` document against the schema: top-level
/// fields present, entries non-empty with all required keys, and
/// `min ≤ median ≤ max` per entry. Returns the entry count.
///
/// Deliberately *no timing assertions* — CI machines vary.
pub fn validate_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    for key in ["available_parallelism", "iters"] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))?;
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing entries array")?;
    if entries.is_empty() {
        return Err("entries array is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        for key in ["dataset", "algorithm"] {
            e.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing string field {key}"))?;
        }
        for key in ["threshold", "threads", "samples", "pairs"] {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing numeric field {key}"))?;
        }
        let ns = |key: &str| -> Result<f64, String> {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing numeric field {key}"))
        };
        let (median, min, max) = (ns("median_ns")?, ns("min_ns")?, ns("max_ns")?);
        if !(min <= median && median <= max) {
            return Err(format!("entry {i}: min/median/max out of order"));
        }
    }
    let funnels = doc
        .get("prefix_join_funnel")
        .and_then(Json::as_array)
        .ok_or("missing prefix_join_funnel array")?;
    for (i, f) in funnels.iter().enumerate() {
        let dataset = f
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("funnel {i}: missing string field dataset"))?;
        let num = |key: &str| -> Result<f64, String> {
            f.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("funnel {i}: missing numeric field {key}"))
        };
        let threshold = num("threshold")?;
        let candidates = num("candidates")?;
        let pruned = num("positional_pruned")?
            + num("space_pruned")?
            + num("signature_rejected")?
            + num("suffix_pruned")?;
        let verified = num("verified")?;
        num("results")?;
        // Leak-free funnel: every candidate is accounted for by exactly
        // one downstream bucket. Deterministic, so safe to enforce.
        if candidates != pruned + verified {
            return Err(format!(
                "funnel {i} ({dataset} tau {threshold}): leaky funnel — \
                 candidates {candidates} != pruned {pruned} + verified {verified}"
            ));
        }
        // The enforced adaptive-prefix regression gate (see
        // PRODUCT_T03_CANDIDATE_CEILING).
        if dataset == "product" && threshold == 0.3 && candidates > PRODUCT_T03_CANDIDATE_CEILING {
            return Err(format!(
                "funnel {i}: product tau 0.3 admits {candidates} candidates \
                 > ceiling {PRODUCT_T03_CANDIDATE_CEILING}"
            ));
        }
    }
    Ok(entries.len())
}

/// Run the quick suite and write the report — the hook shared by the
/// criterion bench and the `bench_simjoin` binary. Returns the report.
pub fn write_report(path: &str, scope: SuiteScope, iters: usize) -> std::io::Result<PerfReport> {
    let report = run_suite(scope, iters);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            available_parallelism: 1,
            iters: 2,
            entries: vec![PerfEntry {
                dataset: "restaurant".into(),
                threshold: 0.3,
                algorithm: "prefix_join".into(),
                threads: 1,
                median_ns: 10,
                min_ns: 5,
                max_ns: 20,
                samples: 2,
                pairs: 7,
            }],
            funnels: vec![FunnelEntry {
                dataset: "restaurant".into(),
                threshold: 0.3,
                stats: JoinStats {
                    candidates: 10,
                    positional_pruned: 1,
                    space_pruned: 0,
                    signature_rejected: 0,
                    suffix_pruned: 2,
                    verified: 7,
                    results: 7,
                },
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let json = tiny_report().to_json();
        assert_eq!(validate_report_json(&json), Ok(1));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report_json("").is_err());
        assert!(validate_report_json("{}").is_err());
        assert!(validate_report_json("{\"schema_version\": 999}").is_err());
        // Entries present but min/median/max inverted.
        let mut r = tiny_report();
        r.entries[0].min_ns = 100;
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("out of order"));
        // Empty entries array.
        r = tiny_report();
        r.entries.clear();
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("empty"));
        // A leaky funnel (candidates unaccounted for) is rejected.
        r = tiny_report();
        r.funnels[0].stats.verified = 3;
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("leaky"));
    }

    #[test]
    fn validation_enforces_the_product_candidate_ceiling() {
        let mut r = tiny_report();
        r.funnels[0].dataset = "product".into();
        r.funnels[0].stats = JoinStats {
            candidates: 70_000,
            positional_pruned: 30_000,
            space_pruned: 20_000,
            signature_rejected: 5_000,
            suffix_pruned: 10_000,
            verified: 5_000,
            results: 1_000,
        };
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("ceiling"));
        // At the ceiling (and leak-free) it passes.
        r.funnels[0].stats.candidates = 65_000;
        r.funnels[0].stats.positional_pruned = 25_000;
        assert_eq!(validate_report_json(&r.to_json()), Ok(1));
        // Restaurant rows are exempt: only Product t=0.3 is gated.
        r.funnels[0].dataset = "restaurant".into();
        r.funnels[0].stats.candidates = 70_000;
        r.funnels[0].stats.positional_pruned = 30_000;
        assert_eq!(validate_report_json(&r.to_json()), Ok(1));
    }

    #[test]
    fn quick_suite_produces_consistent_pair_counts() {
        // One sample is enough: the schema and the cross-algorithm
        // agreement are what matter here, not the timings.
        let report = run_suite(SuiteScope::Quick, 1);
        assert_eq!(
            validate_report_json(&report.to_json()),
            Ok(report.entries.len())
        );
        for thr in THRESHOLDS {
            let counts: Vec<usize> = report
                .entries
                .iter()
                .filter(|e| e.threshold == thr)
                .map(|e| e.pairs)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "algorithms disagree at tau {thr}: {counts:?}"
            );
        }
        assert_eq!(report.funnels.len(), THRESHOLDS.len());
        for f in &report.funnels {
            let s = f.stats;
            assert_eq!(
                s.candidates,
                s.positional_pruned
                    + s.space_pruned
                    + s.signature_rejected
                    + s.suffix_pruned
                    + s.verified
            );
        }
    }
}

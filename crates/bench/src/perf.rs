//! Machine-readable perf reports for the simjoin engine.
//!
//! Times the machine-pass strategies across (dataset, threshold,
//! algorithm, threads) and writes `BENCH_simjoin.json`, so the perf
//! trajectory is tracked across PRs instead of living in prose. The
//! report also carries the [`JoinStats`] filter funnel of `prefix_join`
//! per (dataset, threshold) — candidate counts before/after suffix
//! filtering.
//!
//! The workspace's vendored `serde` is a no-op derive stand-in, so the
//! JSON here is written and validated by hand: [`PerfReport::to_json`]
//! emits it, and [`validate_report_json`] (used by the CI smoke step)
//! parses it with a minimal recursive-descent parser and checks the
//! schema — field presence and `min ≤ median ≤ max` sanity, no timing
//! assertions.

use crowder::prelude::*;
use std::time::Instant;

/// Default output path, relative to the invocation directory (CI runs
/// from the workspace root).
pub const DEFAULT_REPORT_PATH: &str = "BENCH_simjoin.json";

/// Where the criterion bench's quick (restaurant-only) refresh lands —
/// a sibling of [`DEFAULT_REPORT_PATH`] so a routine `cargo bench` run
/// never clobbers the tracked full-scope report. Untracked (gitignored).
pub const QUICK_REPORT_PATH: &str = "BENCH_simjoin.quick.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One timed (dataset, threshold, algorithm, threads) cell.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Dataset name (`restaurant`, `product`).
    pub dataset: String,
    /// Jaccard threshold.
    pub threshold: f64,
    /// Algorithm label (`prefix_join`, `all_pairs`, `token_blocking`,
    /// `qgram_blocking`).
    pub algorithm: String,
    /// Worker threads requested (0 = available parallelism).
    pub threads: usize,
    /// Median wall-clock nanoseconds across samples.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Result pairs returned (sanity: equal across algorithms).
    pub pairs: usize,
}

/// The `prefix_join` filter funnel for one (dataset, threshold).
#[derive(Debug, Clone)]
pub struct FunnelEntry {
    /// Dataset name.
    pub dataset: String,
    /// Jaccard threshold.
    pub threshold: f64,
    /// Filter counters.
    pub stats: JoinStats,
}

/// A full report: timings plus filter funnels plus environment.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Available parallelism of the machine that produced the report.
    pub available_parallelism: usize,
    /// Samples per cell.
    pub iters: usize,
    /// Timed cells.
    pub entries: Vec<PerfEntry>,
    /// `prefix_join` candidate funnels.
    pub funnels: Vec<FunnelEntry>,
}

/// Which datasets a suite run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScope {
    /// Restaurant only — fast, used by the bench-harness hook and CI.
    Quick,
    /// Restaurant + Product — the numbers quoted in CHANGES.md.
    Full,
}

/// The thresholds every suite run covers.
pub const THRESHOLDS: [f64; 3] = [0.3, 0.5, 0.7];

/// Time `f` `iters` times (after one warm-up), returning
/// `(median, min, max)` nanoseconds and the result size of the last run.
fn time_fn(iters: usize, mut f: impl FnMut() -> usize) -> (u128, u128, u128, usize) {
    let mut pairs = std::hint::black_box(f());
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        pairs = std::hint::black_box(f());
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    (
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
        pairs,
    )
}

/// Run the timing suite: for each dataset and threshold, time
/// `prefix_join` and `all_pairs` at 1 thread and at the available
/// parallelism, plus single-thread `token_blocking`, and collect the
/// `prefix_join` filter funnel.
pub fn run_suite(scope: SuiteScope, iters: usize) -> PerfReport {
    let iters = iters.max(1);
    let mut datasets: Vec<(String, Dataset)> =
        vec![("restaurant".into(), crate::harness::restaurant_full())];
    if scope == SuiteScope::Full {
        datasets.push(("product".into(), crate::harness::product_full()));
    }
    let mut entries = Vec::new();
    let mut funnels = Vec::new();
    for (name, dataset) in &datasets {
        let tokens = TokenTable::build(dataset);
        for &thr in &THRESHOLDS {
            let mut push = |algorithm: &str, threads: usize, f: &mut dyn FnMut() -> usize| {
                let (median_ns, min_ns, max_ns, pairs) = time_fn(iters, f);
                entries.push(PerfEntry {
                    dataset: name.clone(),
                    threshold: thr,
                    algorithm: algorithm.into(),
                    threads,
                    median_ns,
                    min_ns,
                    max_ns,
                    samples: iters,
                    pairs,
                });
            };
            for threads in [1usize, 0] {
                push("prefix_join", threads, &mut || {
                    prefix_join(dataset, &tokens, thr, threads).len()
                });
                push("all_pairs", threads, &mut || {
                    all_pairs_scored(dataset, &tokens, thr, threads).len()
                });
            }
            push("token_blocking", 1, &mut || {
                token_blocking_pairs(dataset, &tokens, thr, 0, 1).len()
            });
            let (_, stats) = prefix_join_with_stats(dataset, &tokens, thr, 0);
            funnels.push(FunnelEntry {
                dataset: name.clone(),
                threshold: thr,
                stats,
            });
        }
    }
    PerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        iters,
        entries,
        funnels,
    }
}

// ---------------------------------------------------------------------
// Hand-rolled JSON emission, shared by every bench report writer.
// (The vendored `serde` is a no-op derive stand-in; swap these for
// serde_json when the real registry crates land — see ROADMAP.)
// ---------------------------------------------------------------------

/// Escape a string for embedding in a JSON document: backslash, quote,
/// and every control character (named escapes for the common three,
/// `\u00XX` for the rest — RFC 8259 requires all of U+0000..U+001F).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one single-line JSON object — an array row like
/// `{"dataset": "restaurant", "median_ns": 123}`.
#[derive(Debug, Clone, Default)]
pub struct JsonRow {
    buf: String,
}

impl JsonRow {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf
            .push_str(&format!("\"{key}\": \"{}\"", json_escape(value)));
        self
    }

    /// Append a numeric field (anything that `Display`s as a JSON
    /// number: integers, floats).
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.sep();
        self.buf.push_str(&format!("\"{key}\": {value}"));
        self
    }

    /// Close the row.
    pub fn build(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Builder for a pretty-printed top-level report object: scalar fields
/// at 2-space indent, arrays of [`JsonRow`]s at 4.
#[derive(Debug, Clone, Default)]
pub struct JsonReport {
    buf: String,
}

impl JsonReport {
    /// An empty report object.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        self.buf
            .push_str(if self.buf.is_empty() { "{\n" } else { ",\n" });
    }

    /// Append a top-level numeric field.
    pub fn num(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.sep();
        self.buf.push_str(&format!("  \"{key}\": {value}"));
        self
    }

    /// Append a top-level string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf
            .push_str(&format!("  \"{key}\": \"{}\"", json_escape(value)));
        self
    }

    /// Append an array of rows.
    pub fn rows(mut self, key: &str, rows: impl IntoIterator<Item = String>) -> Self {
        self.sep();
        self.buf.push_str(&format!("  \"{key}\": [\n"));
        let body: Vec<String> = rows.into_iter().map(|r| format!("    {r}")).collect();
        self.buf.push_str(&body.join(",\n"));
        self.buf.push_str("\n  ]");
        self
    }

    /// Close the object.
    pub fn build(mut self) -> String {
        self.buf.push_str("\n}\n");
        self.buf
    }
}

impl PerfReport {
    /// Serialize to the `BENCH_simjoin.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .num("iters", self.iters)
            .rows(
                "entries",
                self.entries.iter().map(|e| {
                    JsonRow::new()
                        .str("dataset", &e.dataset)
                        .num("threshold", e.threshold)
                        .str("algorithm", &e.algorithm)
                        .num("threads", e.threads)
                        .num("median_ns", e.median_ns)
                        .num("min_ns", e.min_ns)
                        .num("max_ns", e.max_ns)
                        .num("samples", e.samples)
                        .num("pairs", e.pairs)
                        .build()
                }),
            )
            .rows(
                "prefix_join_funnel",
                self.funnels.iter().map(|f| {
                    JsonRow::new()
                        .str("dataset", &f.dataset)
                        .num("threshold", f.threshold)
                        .num("candidates", f.stats.candidates)
                        .num("positional_pruned", f.stats.positional_pruned)
                        .num("space_pruned", f.stats.space_pruned)
                        .num("suffix_pruned", f.stats.suffix_pruned)
                        .num("verified", f.stats.verified)
                        .num("results", f.stats.results)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable table of the timings.
    pub fn render(&self) -> String {
        let mut s = format!(
            "simjoin perf ({} samples/cell, {} core(s) available)\n{:<12} {:>5} {:<16} {:>7} {:>12} {:>12} {:>12} {:>8}\n",
            self.iters,
            self.available_parallelism,
            "dataset", "tau", "algorithm", "threads", "median", "min", "max", "pairs"
        );
        for e in &self.entries {
            s.push_str(&format!(
                "{:<12} {:>5} {:<16} {:>7} {:>12} {:>12} {:>12} {:>8}\n",
                e.dataset,
                format!("{:.1}", e.threshold),
                e.algorithm,
                e.threads,
                format_ns(e.median_ns),
                format_ns(e.min_ns),
                format_ns(e.max_ns),
                e.pairs
            ));
        }
        s.push_str(
            "\nprefix_join candidate funnel (before suffix filter = suffix_pruned + verified):\n",
        );
        for f in &self.funnels {
            s.push_str(&format!(
                "{:<12} tau {:.1}: candidates {} -> positional -{} -> space -{} -> suffix -{} -> verified {} -> results {}\n",
                f.dataset,
                f.threshold,
                f.stats.candidates,
                f.stats.positional_pruned,
                f.stats.space_pruned,
                f.stats.suffix_pruned,
                f.stats.verified,
                f.stats.results
            ));
        }
        s
    }
}

fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

// ---------------------------------------------------------------------
// Minimal JSON parsing + schema validation (CI smoke step).
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough of the data model for the report.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as f64.
    Number(f64),
    /// A string (no escape handling beyond `\"` and `\\`).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document (recursive descent; enough for the report
/// schema — no unicode escapes, no exponent-heavy edge cases beyond
/// what `f64::from_str` accepts).
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            ch as char,
            pos,
            b.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    // Collect raw bytes and decode once at the closing quote: pushing
    // each byte as a `char` would mangle multi-byte UTF-8 sequences.
    let mut bytes = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(bytes).map_err(|_| "invalid utf-8 in string".to_string())
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => bytes.push(b'"'),
                    b'\\' => bytes.push(b'\\'),
                    b'/' => bytes.push(b'/'),
                    b'n' => bytes.push(b'\n'),
                    b't' => bytes.push(b'\t'),
                    b'r' => bytes.push(b'\r'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogates are rejected rather than paired: the
                        // writer only emits \u for control characters.
                        let c = char::from_u32(code)
                            .ok_or("\\u escape is not a unicode scalar value")?;
                        let mut buf = [0u8; 4];
                        bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                }
            }
            other => bytes.push(other),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Validate a `BENCH_simjoin.json` document against the schema: top-level
/// fields present, entries non-empty with all required keys, and
/// `min ≤ median ≤ max` per entry. Returns the entry count.
///
/// Deliberately *no timing assertions* — CI machines vary.
pub fn validate_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    for key in ["available_parallelism", "iters"] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))?;
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing entries array")?;
    if entries.is_empty() {
        return Err("entries array is empty".into());
    }
    for (i, e) in entries.iter().enumerate() {
        for key in ["dataset", "algorithm"] {
            e.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("entry {i}: missing string field {key}"))?;
        }
        for key in ["threshold", "threads", "samples", "pairs"] {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing numeric field {key}"))?;
        }
        let ns = |key: &str| -> Result<f64, String> {
            e.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {i}: missing numeric field {key}"))
        };
        let (median, min, max) = (ns("median_ns")?, ns("min_ns")?, ns("max_ns")?);
        if !(min <= median && median <= max) {
            return Err(format!("entry {i}: min/median/max out of order"));
        }
    }
    let funnels = doc
        .get("prefix_join_funnel")
        .and_then(Json::as_array)
        .ok_or("missing prefix_join_funnel array")?;
    for (i, f) in funnels.iter().enumerate() {
        for key in [
            "threshold",
            "candidates",
            "positional_pruned",
            "space_pruned",
            "suffix_pruned",
            "verified",
            "results",
        ] {
            f.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("funnel {i}: missing numeric field {key}"))?;
        }
    }
    Ok(entries.len())
}

/// Run the quick suite and write the report — the hook shared by the
/// criterion bench and the `bench_simjoin` binary. Returns the report.
pub fn write_report(path: &str, scope: SuiteScope, iters: usize) -> std::io::Result<PerfReport> {
    let report = run_suite(scope, iters);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            available_parallelism: 1,
            iters: 2,
            entries: vec![PerfEntry {
                dataset: "restaurant".into(),
                threshold: 0.3,
                algorithm: "prefix_join".into(),
                threads: 1,
                median_ns: 10,
                min_ns: 5,
                max_ns: 20,
                samples: 2,
                pairs: 7,
            }],
            funnels: vec![FunnelEntry {
                dataset: "restaurant".into(),
                threshold: 0.3,
                stats: JoinStats {
                    candidates: 10,
                    positional_pruned: 1,
                    space_pruned: 0,
                    suffix_pruned: 2,
                    verified: 7,
                    results: 7,
                },
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let json = tiny_report().to_json();
        assert_eq!(validate_report_json(&json), Ok(1));
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_report_json("").is_err());
        assert!(validate_report_json("{}").is_err());
        assert!(validate_report_json("{\"schema_version\": 999}").is_err());
        // Entries present but min/median/max inverted.
        let mut r = tiny_report();
        r.entries[0].min_ns = 100;
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("out of order"));
        // Empty entries array.
        r = tiny_report();
        r.entries.clear();
        assert!(validate_report_json(&r.to_json())
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn json_parser_handles_the_basics() {
        let v = parse_json(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"k\" 1}").is_err());
        assert!(parse_json("[1] trailing").is_err());
    }

    #[test]
    fn string_escaping_roundtrips_control_chars_and_utf8() {
        // Every byte the writer could meet: quotes, backslashes, the
        // named control escapes, an unnamed control char, and
        // multi-byte UTF-8 (which the parser must not mangle).
        let nasty = "a\"b\\c\nd\re\tf\u{1}g café 日本語";
        let json = format!("{{\"k\": \"{}\"}}", json_escape(nasty));
        let parsed = parse_json(&json).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(nasty));
        // The document itself carries no raw control characters.
        assert!(json.bytes().all(|b| b >= 0x20));
        // \uXXXX escapes decode, including ones the writer never emits.
        let v = parse_json("{\"k\": \"\\u0041\\u00e9\\u0001\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("A\u{e9}\u{1}"));
        // Lone surrogates and truncated escapes are rejected, not mangled.
        assert!(parse_json("{\"k\": \"\\ud800\"}").is_err());
        assert!(parse_json("{\"k\": \"\\u00\"}").is_err());
        // A row built from a hostile string stays one well-formed line.
        let row = JsonRow::new().str("name", "line1\nline2\t\"x\"").build();
        assert!(!row.contains('\n'));
        assert!(parse_json(&row).is_ok());
    }

    #[test]
    fn quick_suite_produces_consistent_pair_counts() {
        // One sample is enough: the schema and the cross-algorithm
        // agreement are what matter here, not the timings.
        let report = run_suite(SuiteScope::Quick, 1);
        assert_eq!(
            validate_report_json(&report.to_json()),
            Ok(report.entries.len())
        );
        for thr in THRESHOLDS {
            let counts: Vec<usize> = report
                .entries
                .iter()
                .filter(|e| e.threshold == thr)
                .map(|e| e.pairs)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "algorithms disagree at tau {thr}: {counts:?}"
            );
        }
        assert_eq!(report.funnels.len(), THRESHOLDS.len());
        for f in &report.funnels {
            let s = f.stats;
            assert_eq!(
                s.candidates,
                s.positional_pruned + s.space_pruned + s.suffix_pruned + s.verified
            );
        }
    }
}

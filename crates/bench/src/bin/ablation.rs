//! Regenerate the paper's ablation experiment. See `crowder_bench::experiments::ablation`.

fn main() {
    println!("{}", crowder_bench::experiments::ablation::run());
}

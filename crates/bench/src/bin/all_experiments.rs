//! Run the complete experiment battery — every table and figure of the
//! paper's evaluation — and print one consolidated report (the source of
//! EXPERIMENTS.md).

use std::time::Instant;

/// A named experiment: label plus its report-producing entry point.
type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("table2", crowder_bench::experiments::table2::run),
        ("fig10", crowder_bench::experiments::fig10::run),
        ("fig11", crowder_bench::experiments::fig11::run),
        ("fig12", crowder_bench::experiments::fig12::run),
        ("fig13+fig14", crowder_bench::experiments::fig13_14::run),
        ("fig15", crowder_bench::experiments::fig15::run),
        ("analysis", crowder_bench::experiments::analysis::run),
        ("ablation", crowder_bench::experiments::ablation::run),
    ];
    let total = Instant::now();
    for (name, run) in experiments {
        let t0 = Instant::now();
        let report = run();
        println!("{report}");
        eprintln!("[{name} finished in {:.1?}]", t0.elapsed());
        println!("{}\n", "=".repeat(78));
    }
    eprintln!("[full battery in {:.1?}]", total.elapsed());
}

//! Machine-readable serving-layer benchmark: drives the sharded
//! streaming pipeline and the concurrent `ResolverService` and writes
//! `BENCH_serve.json` (see `crowder_bench::serveperf` for the schema) —
//! the unsharded-vs-sharded single-thread comparison (exactness +
//! non-regression are the only enforced acceptance criteria) and the
//! N ingest × M query thread matrix (sustained records/sec, query
//! p50/p99, backpressure rejections; recorded for replay — on 1-CPU
//! machines the matrix measures queueing, not parallel speedup).
//!
//! ```text
//! bench_serve [--quick] [--iters N] [--out PATH]   generate a report
//! bench_serve --check PATH                         validate a report
//! ```
//!
//! `--quick` uses the Restaurant corpus and a reduced matrix (the CI
//! smoke configuration); the default uses Product. `--check` parses an
//! existing report and enforces the schema plus `exact == 1` and
//! `single_thread_ratio >= 0.9`, exiting non-zero on any violation.

use crowder_bench::serveperf::{validate_serve_report_json, write_serve_report, SERVE_REPORT_PATH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut iters = 3usize;
    let mut out = SERVE_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_serve_report_json(&content) {
            Ok(cells) => println!("{path}: OK ({cells} matrix cells)"),
            Err(e) => die(&format!("{path}: validation failure: {e}")),
        }
        return;
    }

    let (corpus, dataset, matrix): (&str, _, &[(usize, usize)]) = if quick {
        (
            "restaurant",
            crowder_bench::harness::restaurant_full(),
            &[(1, 1), (2, 1)],
        )
    } else {
        (
            "product",
            crowder_bench::harness::product_full(),
            &[(1, 1), (2, 1), (2, 2), (4, 2)],
        )
    };
    let report = write_serve_report(&out, corpus, &dataset, iters, matrix)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_serve [--quick] [--iters N] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! Machine-readable simjoin benchmark: times the machine-pass
//! strategies across (dataset, threshold, algorithm, threads) and
//! writes `BENCH_simjoin.json` (see `crowder_bench::perf` for the
//! schema), so the perf trajectory is tracked across PRs.
//!
//! ```text
//! bench_simjoin [--quick] [--iters N] [--out PATH]   generate a report
//! bench_simjoin --check PATH                         validate a report
//! ```
//!
//! `--quick` restricts to the Restaurant dataset (the CI smoke
//! configuration); the default also covers Product. `--check` parses an
//! existing report and verifies the schema (no timing assertions),
//! exiting non-zero on any violation — the CI bench-smoke step runs
//! generate-then-check.

use crowder_bench::perf::{validate_report_json, write_report, SuiteScope, DEFAULT_REPORT_PATH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scope = SuiteScope::Full;
    let mut iters = 9usize;
    let mut out = DEFAULT_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scope = SuiteScope::Quick,
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_report_json(&content) {
            Ok(entries) => println!("{path}: OK ({entries} entries)"),
            Err(e) => die(&format!("{path}: schema violation: {e}")),
        }
        return;
    }

    let report = write_report(&out, scope, iters)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_simjoin [--quick] [--iters N] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! Machine-readable streaming-engine benchmark: streams a corpus
//! through the `crowder-stream` incremental resolver and writes
//! `BENCH_stream.json` (see `crowder_bench::streamperf` for the
//! schema) — sustained ingest throughput, per-arrival delta-join
//! latency percentiles, the per-round HIT-regeneration funnel, and the
//! single-arrival delta-join vs batch-recompute speedup.
//!
//! ```text
//! bench_stream [--quick] [--iters N] [--out PATH]   generate a report
//! bench_stream --check PATH                         validate a report
//! ```
//!
//! `--quick` streams the Restaurant corpus (the CI smoke
//! configuration); the default streams Product — the corpus the
//! acceptance speedup is quoted on. `--check` parses an existing
//! report and verifies the schema (no timing assertions), exiting
//! non-zero on any violation.

use crowder_bench::streamperf::{
    validate_stream_report_json, write_stream_report, STREAM_REPORT_PATH,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut iters = 9usize;
    let mut out = STREAM_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_stream_report_json(&content) {
            Ok(rounds) => println!("{path}: OK ({rounds} rounds)"),
            Err(e) => die(&format!("{path}: schema violation: {e}")),
        }
        return;
    }

    let (corpus, dataset) = if quick {
        ("restaurant", crowder_bench::harness::restaurant_full())
    } else {
        ("product", crowder_bench::harness::product_full())
    };
    let report = write_stream_report(&out, corpus, &dataset, iters)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_stream [--quick] [--iters N] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! Regenerate the paper's analysis experiment. See `crowder_bench::experiments::analysis`.

fn main() {
    println!("{}", crowder_bench::experiments::analysis::run());
}

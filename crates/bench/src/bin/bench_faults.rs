//! Machine-readable fault-tolerance/churn benchmark: streams a corpus
//! through the mutable `crowder-stream` resolver under a churn workload
//! (interleaved inserts, record deletions, evidence commits/decommits,
//! retractions) and writes `BENCH_faults.json` (see
//! `crowder_bench::faultperf` for the schema) — churn throughput,
//! per-operation and cluster-split latency percentiles, HIT-regeneration
//! overhead, and the churn-vs-insert-only acceptance ratio (bounded at
//! 10x by the validator).
//!
//! ```text
//! bench_faults [--quick] [--out PATH]   generate a report
//! bench_faults --check PATH             validate a report
//! ```
//!
//! `--quick` streams the Restaurant corpus (the CI smoke
//! configuration); the default streams Product — the corpus the
//! acceptance ratio is quoted on. `--check` parses an existing report,
//! verifies the schema, and *enforces the 10x churn bound* (the ratio
//! is workload-relative, so it is machine-independent), exiting
//! non-zero on any violation.

use crowder_bench::faultperf::{
    validate_faults_report_json, write_faults_report, FAULTS_REPORT_PATH,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = FAULTS_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_faults_report_json(&content) {
            Ok(rounds) => println!("{path}: OK ({rounds} rounds)"),
            Err(e) => die(&format!("{path}: schema violation: {e}")),
        }
        return;
    }

    let (corpus, dataset) = if quick {
        ("restaurant", crowder_bench::harness::restaurant_full())
    } else {
        ("product", crowder_bench::harness::product_full())
    };
    let report = write_faults_report(&out, corpus, &dataset)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_faults [--quick] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

//! Regenerate the paper's fig12 experiment. See `crowder_bench::experiments::fig12`.

fn main() {
    println!("{}", crowder_bench::experiments::fig12::run());
}

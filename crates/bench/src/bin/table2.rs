//! Regenerate the paper's table2 experiment. See `crowder_bench::experiments::table2`.

fn main() {
    println!("{}", crowder_bench::experiments::table2::run());
}

//! Regenerate the paper's fig10 experiment. See `crowder_bench::experiments::fig10`.

fn main() {
    println!("{}", crowder_bench::experiments::fig10::run());
}

//! Regenerate the paper's fig13 experiment (Figures 13 and 14 share the
//! §7.4 protocol and are produced together).

fn main() {
    println!("{}", crowder_bench::experiments::fig13_14::run());
}

//! Regenerate the paper's fig15 experiment. See `crowder_bench::experiments::fig15`.

fn main() {
    println!("{}", crowder_bench::experiments::fig15::run());
}

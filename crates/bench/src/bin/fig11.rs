//! Regenerate the paper's fig11 experiment. See `crowder_bench::experiments::fig11`.

fn main() {
    println!("{}", crowder_bench::experiments::fig11::run());
}

//! Machine-readable durability benchmark: applies one deterministic
//! mutation script to the in-memory resolver and to the WAL/snapshot
//! engine (`crowder-durable`) at the default group-commit cadence, then
//! times recovery across a log-length × snapshot-cadence matrix, and
//! writes `BENCH_durable.json` (see `crowder_bench::durperf` for the
//! schema) — WAL overhead per op vs in-memory (bounded at 3x by the
//! validator) and recovery time with a bit-exact digest check per cell.
//!
//! ```text
//! bench_durable [--quick] [--out PATH]   generate a report
//! bench_durable --check PATH             validate a report
//! ```
//!
//! `--quick` streams the Restaurant corpus (the CI smoke
//! configuration); the default streams Product — the corpus the
//! overhead bound is quoted on. `--check` parses an existing report,
//! verifies the schema, and *enforces the 3x overhead bound and the
//! per-cell digest checks* (both are workload-relative, so they are
//! machine-independent), exiting non-zero on any violation.

use crowder_bench::durperf::{
    validate_durable_report_json, write_durable_report, DURABLE_REPORT_PATH,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = DURABLE_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_durable_report_json(&content) {
            Ok(cells) => println!("{path}: OK ({cells} recovery cells)"),
            Err(e) => die(&format!("{path}: schema violation: {e}")),
        }
        return;
    }

    let (corpus, dataset, limit) = if quick {
        ("restaurant", crowder_bench::harness::restaurant_full(), 512)
    } else {
        (
            "product",
            crowder_bench::harness::product_full(),
            usize::MAX,
        )
    };
    let report = write_durable_report(&out, corpus, &dataset, limit)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_durable [--quick] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

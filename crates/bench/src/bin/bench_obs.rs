//! Observability-overhead benchmark: bounds the cost of the
//! `crowder-obs` instrumentation compiled into the streaming engine and
//! writes `BENCH_obs.json` (see `crowder_bench::obsperf` for the schema
//! and the enforced ceilings — installed ≤ 5%, no-recorder ≤ 0.5%,
//! histogram percentiles within one log2 bucket of the exact oracle).
//!
//! ```text
//! bench_obs [--quick] [--iters N] [--out PATH]   generate a report
//! bench_obs --check PATH                         validate a report
//! ```
//!
//! `--quick` streams the Restaurant corpus (the CI smoke
//! configuration); the default streams Product. `--check` parses an
//! existing report and verifies both the schema and the overhead
//! bounds, exiting non-zero on any violation.

use crowder_bench::obsperf::{validate_obs_report_json, write_obs_report, OBS_REPORT_PATH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut iters = 5usize;
    let mut out = OBS_REPORT_PATH.to_string();
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a positive integer"));
            }
            "--out" => {
                i += 1;
                out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--check" => {
                i += 1;
                check = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--check needs a path")),
                );
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if let Some(path) = check {
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        match validate_obs_report_json(&content) {
            Ok(rows) => println!("{path}: OK ({rows} accuracy rows, bounds hold)"),
            Err(e) => die(&format!("{path}: violation: {e}")),
        }
        return;
    }

    let (corpus, dataset) = if quick {
        ("restaurant", crowder_bench::harness::restaurant_full())
    } else {
        ("product", crowder_bench::harness::product_full())
    };
    let report = write_obs_report(&out, corpus, &dataset, iters)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    print!("{}", report.render());
    println!("\nwrote {out}");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_obs [--quick] [--iters N] [--out PATH] | --check PATH");
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

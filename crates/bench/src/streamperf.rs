//! Machine-readable perf report for the incremental (streaming) ER
//! engine — `BENCH_stream.json`.
//!
//! Measures what a batch report cannot: the cost of *absorbing one
//! arrival*. The suite streams a full corpus through an
//! [`IncrementalResolver`], recording per-arrival delta-join latency
//! percentiles, sustained ingest throughput (insert + per-round HIT
//! regeneration), and the per-round HIT-regeneration funnel; it then
//! pits a single-record delta join against recomputing the batch
//! `prefix_join` over the same corpus — the speedup that justifies the
//! subsystem (acceptance: ≥ 10× with ≥ 1k records indexed on Product).
//!
//! Serialization shares the hand-rolled [`JsonReport`]/[`JsonRow`]
//! writers and the recursive-descent [`parse_json`] validator with
//! `BENCH_simjoin.json` (see [`crate::perf`]); no timing assertions in
//! the schema check — CI machines vary.

use crate::perf::{parse_json, Json, JsonReport, JsonRow};
use crowder::prelude::*;
use crowder_obs::stats::{format_ns as fmt_ns, median_sorted, percentile_sorted as percentile};
use std::time::Instant;

/// Default output path for the streaming report.
pub const STREAM_REPORT_PATH: &str = "BENCH_stream.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const STREAM_SCHEMA_VERSION: u32 = 1;

/// Threshold the streaming suite joins at (the interesting regime:
/// Product τ = 0.3 is the paper's likelihood sweet spot).
pub const STREAM_THRESHOLD: f64 = 0.3;

/// Arrivals per HIT-regeneration round.
pub const STREAM_BATCH: usize = 128;

/// One per-round row of the streaming funnel.
#[derive(Debug, Clone)]
pub struct StreamRound {
    /// Round index.
    pub round: usize,
    /// Records ingested.
    pub arrived: usize,
    /// Pairs surfaced by this round's delta joins.
    pub new_pairs: usize,
    /// Candidates the delta joins examined.
    pub candidates: u64,
    /// Candidates surviving to exact verification.
    pub verified: u64,
    /// Clusters dirtied by the round.
    pub dirty_clusters: usize,
    /// HITs retired / created / left untouched by the flush.
    pub hits_retired: usize,
    /// Newly published HITs.
    pub hits_created: usize,
    /// Live HITs untouched (stable ids).
    pub hits_stable: usize,
}

/// The full streaming perf report.
#[derive(Debug, Clone)]
pub struct StreamPerfReport {
    /// Available parallelism of the producing machine.
    pub available_parallelism: usize,
    /// Corpus name (`product`, `restaurant`).
    pub corpus: String,
    /// Records streamed.
    pub records: usize,
    /// Join threshold.
    pub threshold: f64,
    /// Arrivals per regeneration round.
    pub batch_size: usize,
    /// Samples per timed cell of the delta-vs-batch comparison.
    pub iters: usize,
    /// End-to-end ingest throughput: records / (insert + flush) time.
    pub sustained_records_per_sec: f64,
    /// Total pairs surfaced (sanity: equals batch join size).
    pub total_pairs: usize,
    /// Dictionary re-rank epochs during the stream.
    pub epochs: u64,
    /// Per-arrival delta-join latency percentiles (nanoseconds).
    pub delta_p50_ns: u128,
    /// 90th percentile.
    pub delta_p90_ns: u128,
    /// 99th percentile.
    pub delta_p99_ns: u128,
    /// Worst arrival (includes epoch-rebuild arrivals).
    pub delta_max_ns: u128,
    /// Records indexed when the single-arrival comparison ran.
    pub prewarm_records: usize,
    /// Median single-record delta join (ns) at that corpus size.
    pub single_delta_median_ns: u128,
    /// Median batch `prefix_join` recompute (ns) over the same corpus
    /// (pre-built `TokenTable` — conservative for the streaming side).
    pub batch_join_median_ns: u128,
    /// Median batch recompute including `TokenTable::build` — what a
    /// batch pipeline actually redoes per arrival.
    pub batch_rebuild_median_ns: u128,
    /// `batch_join_median_ns / single_delta_median_ns`.
    pub speedup: f64,
    /// Per-round funnel rows.
    pub rounds: Vec<StreamRound>,
}

fn median_of(iters: usize, mut f: impl FnMut() -> u128) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_unstable();
    median_sorted(&samples)
}

/// Stream `dataset` through a resolver and measure everything the
/// report carries. `iters` controls the delta-vs-batch sample count.
pub fn run_stream_suite(corpus: &str, dataset: &Dataset, iters: usize) -> StreamPerfReport {
    let config = StreamConfig {
        threshold: STREAM_THRESHOLD,
        ..StreamConfig::default()
    };
    let mut resolver = IncrementalResolver::like(dataset, config.clone());
    let mut delta_ns: Vec<u128> = Vec::with_capacity(dataset.len());
    let mut rounds = Vec::new();
    let started = Instant::now();
    for (round, chunk) in dataset.records().chunks(STREAM_BATCH).enumerate() {
        let mut stats = JoinStats::default();
        let mut new_pairs = 0usize;
        for record in chunk {
            let t0 = Instant::now();
            let report = resolver
                .insert(record.source, record.fields.clone())
                .expect("schema matches");
            delta_ns.push(t0.elapsed().as_nanos());
            stats.absorb(&report.stats);
            new_pairs += report.new_pairs.len();
        }
        let dirty_clusters = resolver.dirty_clusters();
        let delta = resolver.regenerate_hits().expect("k is valid");
        rounds.push(StreamRound {
            round,
            arrived: chunk.len(),
            new_pairs,
            candidates: stats.candidates,
            verified: stats.verified,
            dirty_clusters,
            hits_retired: delta.retired.len(),
            hits_created: delta.created.len(),
            hits_stable: delta.stable,
        });
    }
    let total_secs = started.elapsed().as_secs_f64();

    // The delta-vs-batch comparison at the full corpus size: one more
    // arrival, replayed from the same resolver state each sample.
    let probe_fields = dataset.records()[0].fields.clone();
    let probe_source = dataset.records()[0].source;
    let single_delta_median_ns = median_of(iters, || {
        let mut fork = resolver.clone();
        let t0 = Instant::now();
        fork.insert(probe_source, probe_fields.clone())
            .expect("schema matches");
        t0.elapsed().as_nanos()
    });
    let tokens = TokenTable::build(dataset);
    let batch_join_median_ns = median_of(iters, || {
        let t0 = Instant::now();
        std::hint::black_box(prefix_join(dataset, &tokens, STREAM_THRESHOLD, 0));
        t0.elapsed().as_nanos()
    });
    let batch_rebuild_median_ns = median_of(iters, || {
        let t0 = Instant::now();
        let tokens = TokenTable::build(dataset);
        std::hint::black_box(prefix_join(dataset, &tokens, STREAM_THRESHOLD, 0));
        t0.elapsed().as_nanos()
    });

    delta_ns.sort_unstable();
    StreamPerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        corpus: corpus.into(),
        records: dataset.len(),
        threshold: STREAM_THRESHOLD,
        batch_size: STREAM_BATCH,
        iters: iters.max(1),
        sustained_records_per_sec: dataset.len() as f64 / total_secs.max(1e-9),
        total_pairs: resolver.pairs().len(),
        epochs: resolver.epochs(),
        delta_p50_ns: percentile(&delta_ns, 0.50),
        delta_p90_ns: percentile(&delta_ns, 0.90),
        delta_p99_ns: percentile(&delta_ns, 0.99),
        delta_max_ns: delta_ns.last().copied().unwrap_or(0),
        prewarm_records: resolver.len(),
        single_delta_median_ns,
        batch_join_median_ns,
        batch_rebuild_median_ns,
        speedup: batch_join_median_ns as f64 / single_delta_median_ns.max(1) as f64,
        rounds,
    }
}

impl StreamPerfReport {
    /// Serialize to the `BENCH_stream.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", STREAM_SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .str("corpus", &self.corpus)
            .num("records", self.records)
            .num("threshold", self.threshold)
            .num("batch_size", self.batch_size)
            .num("iters", self.iters)
            .num(
                "sustained_records_per_sec",
                format!("{:.1}", self.sustained_records_per_sec),
            )
            .num("total_pairs", self.total_pairs)
            .num("epochs", self.epochs)
            .num("delta_p50_ns", self.delta_p50_ns)
            .num("delta_p90_ns", self.delta_p90_ns)
            .num("delta_p99_ns", self.delta_p99_ns)
            .num("delta_max_ns", self.delta_max_ns)
            .num("prewarm_records", self.prewarm_records)
            .num("single_delta_median_ns", self.single_delta_median_ns)
            .num("batch_join_median_ns", self.batch_join_median_ns)
            .num("batch_rebuild_median_ns", self.batch_rebuild_median_ns)
            .num("speedup", format!("{:.1}", self.speedup))
            .rows(
                "rounds",
                self.rounds.iter().map(|r| {
                    JsonRow::new()
                        .num("round", r.round)
                        .num("arrived", r.arrived)
                        .num("new_pairs", r.new_pairs)
                        .num("candidates", r.candidates)
                        .num("verified", r.verified)
                        .num("dirty_clusters", r.dirty_clusters)
                        .num("hits_retired", r.hits_retired)
                        .num("hits_created", r.hits_created)
                        .num("hits_stable", r.hits_stable)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "stream perf: {} ({} records, tau {}, batch {}, {} core(s))\n\
             sustained ingest: {:.0} records/sec; {} pairs; {} epochs\n\
             delta-join latency: p50 {} / p90 {} / p99 {} / max {}\n\
             single delta vs batch recompute at {} records:\n\
             delta {} vs prefix_join {} ({:.1}x; incl. re-interning {})\n\n\
             round  arrived  pairs  candidates  dirty  retired  created  stable\n",
            self.corpus,
            self.records,
            self.threshold,
            self.batch_size,
            self.available_parallelism,
            self.sustained_records_per_sec,
            self.total_pairs,
            self.epochs,
            fmt_ns(self.delta_p50_ns),
            fmt_ns(self.delta_p90_ns),
            fmt_ns(self.delta_p99_ns),
            fmt_ns(self.delta_max_ns),
            self.prewarm_records,
            fmt_ns(self.single_delta_median_ns),
            fmt_ns(self.batch_join_median_ns),
            self.speedup,
            fmt_ns(self.batch_rebuild_median_ns),
        );
        for r in &self.rounds {
            s.push_str(&format!(
                "{:>5}  {:>7}  {:>5}  {:>10}  {:>5}  {:>7}  {:>7}  {:>6}\n",
                r.round,
                r.arrived,
                r.new_pairs,
                r.candidates,
                r.dirty_clusters,
                r.hits_retired,
                r.hits_created,
                r.hits_stable
            ));
        }
        s
    }
}

/// Validate a `BENCH_stream.json` document: field presence, ordered
/// latency percentiles, and a well-formed non-empty rounds array.
/// Returns the round count. Deliberately no timing assertions — CI
/// machines vary; the ≥10× speedup claim is checked on the *recorded*
/// report, not on whatever machine CI lands on.
pub fn validate_stream_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != STREAM_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != {STREAM_SCHEMA_VERSION}"
        ));
    }
    doc.get("corpus")
        .and_then(Json::as_str)
        .ok_or("missing string field corpus")?;
    for key in [
        "available_parallelism",
        "records",
        "threshold",
        "batch_size",
        "iters",
        "sustained_records_per_sec",
        "total_pairs",
        "epochs",
        "prewarm_records",
        "single_delta_median_ns",
        "batch_join_median_ns",
        "batch_rebuild_median_ns",
        "speedup",
    ] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))?;
    }
    let ns = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))
    };
    let (p50, p90, p99, max) = (
        ns("delta_p50_ns")?,
        ns("delta_p90_ns")?,
        ns("delta_p99_ns")?,
        ns("delta_max_ns")?,
    );
    if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
        return Err("delta latency percentiles out of order".into());
    }
    let rounds = doc
        .get("rounds")
        .and_then(Json::as_array)
        .ok_or("missing rounds array")?;
    if rounds.is_empty() {
        return Err("rounds array is empty".into());
    }
    for (i, r) in rounds.iter().enumerate() {
        for key in [
            "round",
            "arrived",
            "new_pairs",
            "candidates",
            "verified",
            "dirty_clusters",
            "hits_retired",
            "hits_created",
            "hits_stable",
        ] {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("round {i}: missing numeric field {key}"))?;
        }
    }
    Ok(rounds.len())
}

/// Run the suite over the named corpus and write the report.
pub fn write_stream_report(
    path: &str,
    corpus: &str,
    dataset: &Dataset,
    iters: usize,
) -> std::io::Result<StreamPerfReport> {
    let report = run_stream_suite(corpus, dataset, iters);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut d = Dataset::new("t", vec!["name".into()], PairSpace::SelfJoin);
        for i in 0..12 {
            d.push_record(
                SourceId(0),
                vec![format!("tok{} tok{} shared common", i % 4, i % 3)],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let report = run_stream_suite("tiny", &tiny_dataset(), 1);
        assert_eq!(
            validate_stream_report_json(&report.to_json()),
            Ok(report.rounds.len())
        );
        // Streaming surfaced exactly the batch pair set.
        let d = tiny_dataset();
        let tokens = TokenTable::build(&d);
        assert_eq!(
            report.total_pairs,
            prefix_join(&d, &tokens, STREAM_THRESHOLD, 1).len()
        );
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_stream_report_json("").is_err());
        assert!(validate_stream_report_json("{}").is_err());
        assert!(validate_stream_report_json("{\"schema_version\": 999}").is_err());
        let mut report = run_stream_suite("tiny", &tiny_dataset(), 1);
        report.delta_p50_ns = report.delta_max_ns + 1;
        assert!(validate_stream_report_json(&report.to_json())
            .unwrap_err()
            .contains("percentiles"));
        report = run_stream_suite("tiny", &tiny_dataset(), 1);
        report.rounds.clear();
        assert!(validate_stream_report_json(&report.to_json())
            .unwrap_err()
            .contains("empty"));
    }
}

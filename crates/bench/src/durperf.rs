//! Machine-readable durability report for the WAL/snapshot engine —
//! `BENCH_durable.json`.
//!
//! Two questions, both workload-relative so they are meaningful to
//! assert in CI on any machine:
//!
//! * **WAL overhead per op**: the same deterministic mutation script
//!   (inserts, corrections, deletions, evidence, retractions, worker
//!   re-weights, HIT flushes) is applied to a plain in-memory
//!   [`IncrementalResolver`] and to a [`DurableResolver`] logging to a
//!   real filesystem directory at the **default group-commit cadence**
//!   ([`DurabilityConfig::default`]: fsync every 256 ops, snapshot
//!   every 4096). The validator *enforces* `wal_overhead ≤ 3×` — the
//!   PR's acceptance bound: durability must not triple the cost of the
//!   streaming engine.
//! * **Recovery time vs log length × snapshot cadence**: the script is
//!   replayed at several prefix lengths under several snapshot
//!   cadences; each cell times [`DurableResolver::recover`] and checks
//!   the recovered digest is bit-for-bit identical to the pre-crash
//!   state (`digest_ok`, enforced by the validator). Tighter cadences
//!   shorten the replayed WAL suffix at the price of more snapshot IO
//!   during the run.
//!
//! Serialization shares the hand-rolled [`JsonReport`]/[`JsonRow`]
//! writers and the recursive-descent [`parse_json`] validator with the
//! other `BENCH_*.json` reports (see [`crate::perf`]).

use crate::perf::{parse_json, Json, JsonReport, JsonRow};
use crowder::prelude::*;
use crowder_obs::stats::format_ns as fmt_ns;
use std::time::Instant;

/// Default output path for the durability report.
pub const DURABLE_REPORT_PATH: &str = "BENCH_durable.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const DURABLE_SCHEMA_VERSION: u32 = 1;

/// Join threshold of the workload (same regime as the other streaming
/// reports).
pub const DURABLE_THRESHOLD: f64 = 0.3;

/// Arrivals per round (each round ends in a HIT flush).
pub const DURABLE_BATCH: usize = 128;

/// The WAL-on / in-memory per-op cost ratio the validator enforces at
/// the default sync cadence (the PR's acceptance bound).
pub const DURABLE_MAX_OVERHEAD: f64 = 3.0;

/// Snapshot cadences of the recovery matrix (ops between checkpoints).
pub const DURABLE_SNAP_CADENCES: [usize; 3] = [64, 512, 1_000_000];

/// One cell of the recovery matrix.
#[derive(Debug, Clone)]
pub struct RecoveryCell {
    /// Operations logged before the simulated crash.
    pub ops: usize,
    /// Snapshot cadence the run used.
    pub snapshot_every: usize,
    /// Sequence number of the snapshot recovery loaded.
    pub snapshot_seq: u64,
    /// WAL frames replayed on top of the snapshot.
    pub replayed: usize,
    /// Wall-clock recovery time (read + verify + load + replay).
    pub recovery_ns: u128,
    /// 1 iff the recovered digest is bit-for-bit identical to the
    /// pre-crash engine's digest.
    pub digest_ok: bool,
}

/// The full durability perf report.
#[derive(Debug, Clone)]
pub struct DurablePerfReport {
    /// Available parallelism of the producing machine.
    pub available_parallelism: usize,
    /// Corpus name (`product`, `restaurant`).
    pub corpus: String,
    /// Records in the corpus.
    pub records: usize,
    /// Mutation script length (inserts + updates + removes + evidence
    /// + retractions + re-weights + flushes).
    pub ops: usize,
    /// Join threshold.
    pub threshold: f64,
    /// Group-commit cadence of the WAL-on run (default config).
    pub sync_every_ops: usize,
    /// Checkpoint cadence of the WAL-on run (default config).
    pub snapshot_every_ops: usize,
    /// In-memory run: total nanoseconds for the whole script.
    pub mem_total_ns: u128,
    /// In-memory run: mean cost per op.
    pub mem_per_op_ns: u128,
    /// WAL-on run (filesystem directory, default cadence): total ns.
    pub wal_total_ns: u128,
    /// WAL-on run: mean cost per op.
    pub wal_per_op_ns: u128,
    /// Bytes in the durability directory (WAL + snapshots) right
    /// before shutdown.
    pub wal_dir_bytes: u64,
    /// `wal_per_op_ns / mem_per_op_ns` — the acceptance ratio, bounded
    /// by [`DURABLE_MAX_OVERHEAD`].
    pub wal_overhead: f64,
    /// Recovery matrix cells.
    pub recovery: Vec<RecoveryCell>,
}

/// Compile the corpus into a deterministic mutation script. Every op
/// kind the WAL can carry appears: each round inserts a chunk, corrects
/// one record, deletes one, commits evidence on every third surfaced
/// pair (retracting every ninth), re-weights a worker occasionally, and
/// flushes HITs. Built against a scratch resolver so every op is legal
/// at its point in the sequence.
pub fn make_script(dataset: &Dataset, limit: usize, config: &StreamConfig) -> Vec<WalOp> {
    let mut scratch = IncrementalResolver::like(dataset, config.clone());
    let mut script: Vec<WalOp> = Vec::new();
    let records: Vec<_> = dataset.records().iter().take(limit).collect();
    for (round, chunk) in records.chunks(DURABLE_BATCH).enumerate() {
        let mut round_pairs: Vec<Pair> = Vec::new();
        let mut arrived: Vec<RecordId> = Vec::new();
        for record in chunk {
            let report = scratch
                .insert(record.source, record.fields.clone())
                .expect("schema matches");
            arrived.push(report.record);
            round_pairs.extend(report.new_pairs.iter().map(|sp| sp.pair));
            script.push(WalOp::Insert {
                source: record.source.0,
                fields: record.fields.clone(),
            });
        }
        // One in-place correction per round: re-state the first
        // arrival's fields with a marker token appended.
        if let (Some(&victim), Some(record)) = (arrived.first(), chunk.first()) {
            let mut fields = record.fields.clone();
            if let Some(f) = fields.first_mut() {
                f.push_str(" rev2");
            }
            scratch
                .update(victim, fields.clone())
                .expect("victim is alive");
            script.push(WalOp::Update {
                record: victim,
                fields,
            });
        }
        // One deletion per round.
        if let Some(&victim) = arrived.last() {
            if scratch.is_alive(victim) {
                scratch.remove(victim).expect("victim is alive");
                script.push(WalOp::Remove(victim));
            }
        }
        // Evidence churn on this round's surfaced pairs.
        for (i, &pair) in round_pairs.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            if !scratch.is_alive(pair.lo()) || !scratch.is_alive(pair.hi()) {
                continue;
            }
            let weight = [0.75, 1.0, 1.25][(i / 3) % 3];
            scratch.record_evidence(pair, true, weight);
            script.push(WalOp::Evidence {
                pair,
                verdict: true,
                weight,
            });
            if i % 9 == 0 {
                scratch.retract(pair);
                script.push(WalOp::Retract(pair));
            }
        }
        // Periodic worker re-weights and re-ranks.
        if round % 3 == 1 {
            script.push(WalOp::Weights(vec![(
                (round % 5) as u64,
                0.5 + 0.25 * (round % 3) as f64,
            )]));
        }
        if round % 4 == 3 {
            scratch.rerank_now();
            script.push(WalOp::EpochRerank);
        }
        scratch.regenerate_hits().expect("k is valid");
        script.push(WalOp::Flush);
    }
    script
}

/// Apply one logged op to a plain in-memory resolver (the baseline
/// mirror of `DurableResolver::apply`, minus logging).
fn apply_plain(resolver: &mut IncrementalResolver, op: &WalOp) {
    match op {
        WalOp::Insert { source, fields } => {
            resolver
                .insert(SourceId(*source), fields.clone())
                .expect("script op is legal");
        }
        WalOp::Remove(record) => {
            resolver.remove(*record).expect("script op is legal");
        }
        WalOp::Update { record, fields } => {
            resolver
                .update(*record, fields.clone())
                .expect("script op is legal");
        }
        WalOp::Retract(pair) => {
            resolver.retract(*pair);
        }
        WalOp::Evidence {
            pair,
            verdict,
            weight,
        } => {
            resolver.record_evidence(*pair, *verdict, *weight);
        }
        WalOp::EpochRerank => resolver.rerank_now(),
        WalOp::Flush => {
            resolver.regenerate_hits().expect("k is valid");
        }
        WalOp::Weights(_) => {} // engine-level serving state; no resolver effect
    }
}

fn percent_prefixes(len: usize) -> [usize; 2] {
    [len / 2, len]
}

/// Run the full durability suite over `dataset`.
pub fn run_durable_suite(corpus: &str, dataset: &Dataset, limit: usize) -> DurablePerfReport {
    let stream = StreamConfig {
        threshold: DURABLE_THRESHOLD,
        ..StreamConfig::default()
    };
    let script = make_script(dataset, limit, &stream);
    let durable = DurabilityConfig::default();

    // In-memory baseline.
    let mut plain = IncrementalResolver::like(dataset, stream.clone());
    let t0 = Instant::now();
    for op in &script {
        apply_plain(&mut plain, op);
    }
    let mem_total_ns = t0.elapsed().as_nanos();

    // WAL-on run against a real filesystem directory, default cadence.
    let root = std::env::temp_dir().join(format!("crowder-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = FsDir::new(&root).expect("temp dir is writable");
    let mut engine = DurableResolver::create_with(
        dir.clone(),
        IncrementalResolver::like(dataset, stream.clone()),
        durable,
    )
    .expect("fresh durability directory");
    let t0 = Instant::now();
    for op in &script {
        engine.apply(op.clone()).expect("script op is legal");
    }
    engine.sync().expect("final group commit");
    let wal_total_ns = t0.elapsed().as_nanos();
    let wal_dir_bytes: u64 = dir
        .list()
        .expect("durability dir is listable")
        .iter()
        .map(|name| {
            dir.read(name)
                .expect("blob is readable")
                .map_or(0, |b| b.len() as u64)
        })
        .sum();
    drop(engine);
    let _ = std::fs::remove_dir_all(&root);

    // Recovery matrix on in-memory storage: isolates replay/verify cost
    // from disk caches and keeps the cells deterministic.
    let mut recovery = Vec::new();
    for prefix in percent_prefixes(script.len()) {
        for snap_every in DURABLE_SNAP_CADENCES {
            let config = DurabilityConfig {
                snapshot_every_ops: snap_every,
                ..DurabilityConfig::default()
            };
            let mem = MemDir::new();
            let mut engine = DurableResolver::create_with(
                mem.clone(),
                IncrementalResolver::like(dataset, stream.clone()),
                config,
            )
            .expect("fresh durability directory");
            for op in &script[..prefix] {
                engine.apply(op.clone()).expect("script op is legal");
            }
            engine.sync().expect("final group commit");
            let expected = engine.digest();
            drop(engine); // simulated crash: only the synced image survives
            let tr = Instant::now();
            let (recovered, report) =
                DurableResolver::recover(mem, stream.clone(), config).expect("image is intact");
            let recovery_ns = tr.elapsed().as_nanos();
            recovery.push(RecoveryCell {
                ops: prefix,
                snapshot_every: snap_every,
                snapshot_seq: report.snapshot_seq,
                replayed: report.replayed,
                recovery_ns,
                digest_ok: recovered.digest() == expected,
            });
        }
    }

    let ops = script.len();
    let mem_per_op_ns = mem_total_ns / ops.max(1) as u128;
    let wal_per_op_ns = wal_total_ns / ops.max(1) as u128;
    DurablePerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        corpus: corpus.into(),
        records: limit.min(dataset.len()),
        ops,
        threshold: DURABLE_THRESHOLD,
        sync_every_ops: durable.sync_every_ops,
        snapshot_every_ops: durable.snapshot_every_ops,
        mem_total_ns,
        mem_per_op_ns,
        wal_total_ns,
        wal_per_op_ns,
        wal_dir_bytes,
        wal_overhead: wal_per_op_ns as f64 / mem_per_op_ns.max(1) as f64,
        recovery,
    }
}

impl DurablePerfReport {
    /// Serialize to the `BENCH_durable.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", DURABLE_SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .str("corpus", &self.corpus)
            .num("records", self.records)
            .num("ops", self.ops)
            .num("threshold", self.threshold)
            .num("sync_every_ops", self.sync_every_ops)
            .num("snapshot_every_ops", self.snapshot_every_ops)
            .num("mem_total_ns", self.mem_total_ns)
            .num("mem_per_op_ns", self.mem_per_op_ns)
            .num("wal_total_ns", self.wal_total_ns)
            .num("wal_per_op_ns", self.wal_per_op_ns)
            .num("wal_dir_bytes", self.wal_dir_bytes)
            .num("wal_overhead", format!("{:.3}", self.wal_overhead))
            .rows(
                "recovery",
                self.recovery.iter().map(|c| {
                    JsonRow::new()
                        .num("ops", c.ops)
                        .num("snapshot_every", c.snapshot_every)
                        .num("snapshot_seq", c.snapshot_seq)
                        .num("replayed", c.replayed)
                        .num("recovery_ns", c.recovery_ns)
                        .num("digest_ok", c.digest_ok as u8)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "durability perf: {} ({} records, {} ops, tau {}, {} core(s))\n\
             in-memory: {} / op; WAL-on (fsync/{} snap/{}): {} / op — overhead {:.2}x (bound {:.0}x)\n\
             durability dir at shutdown: {} bytes\n\n\
             recovery matrix (synced image, bit-exact digest required):\n\
             {:>6}  {:>10}  {:>9}  {:>9}  {:>12}  ok\n",
            self.corpus,
            self.records,
            self.ops,
            self.threshold,
            self.available_parallelism,
            fmt_ns(self.mem_per_op_ns),
            self.sync_every_ops,
            self.snapshot_every_ops,
            fmt_ns(self.wal_per_op_ns),
            self.wal_overhead,
            DURABLE_MAX_OVERHEAD,
            self.wal_dir_bytes,
            "ops",
            "snap-every",
            "snap-seq",
            "replayed",
            "recovery",
        );
        for c in &self.recovery {
            s.push_str(&format!(
                "{:>6}  {:>10}  {:>9}  {:>9}  {:>12}  {}\n",
                c.ops,
                c.snapshot_every,
                c.snapshot_seq,
                c.replayed,
                fmt_ns(c.recovery_ns),
                if c.digest_ok { "yes" } else { "NO" },
            ));
        }
        s
    }
}

/// Validate a `BENCH_durable.json` document: field presence, a
/// well-formed non-empty recovery matrix whose every cell recovered a
/// **bit-for-bit identical digest**, and the acceptance bound
/// `wal_overhead ≤ 3`. The overhead is WAL-on cost per op over
/// in-memory cost per op *measured on the same machine in the same
/// run*, so — unlike wall-clock numbers — it is meaningful to assert
/// in CI.
pub fn validate_durable_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != DURABLE_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != {DURABLE_SCHEMA_VERSION}"
        ));
    }
    doc.get("corpus")
        .and_then(Json::as_str)
        .ok_or("missing string field corpus")?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))
    };
    for key in [
        "available_parallelism",
        "records",
        "ops",
        "threshold",
        "sync_every_ops",
        "snapshot_every_ops",
        "mem_total_ns",
        "mem_per_op_ns",
        "wal_total_ns",
        "wal_per_op_ns",
        "wal_dir_bytes",
    ] {
        num(key)?;
    }
    let overhead = num("wal_overhead")?;
    if overhead > DURABLE_MAX_OVERHEAD {
        return Err(format!(
            "wal_overhead {overhead} exceeds the {DURABLE_MAX_OVERHEAD}x acceptance bound"
        ));
    }
    let ops = num("ops")?;
    let rows = doc
        .get("recovery")
        .and_then(Json::as_array)
        .ok_or("missing recovery array")?;
    if rows.is_empty() {
        return Err("recovery array is empty".into());
    }
    for (i, r) in rows.iter().enumerate() {
        let cell = |key: &str| -> Result<f64, String> {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("recovery cell {i}: missing numeric field {key}"))
        };
        for key in ["ops", "snapshot_every", "snapshot_seq", "recovery_ns"] {
            cell(key)?;
        }
        if cell("replayed")? > ops {
            return Err(format!(
                "recovery cell {i}: replayed more ops than were logged"
            ));
        }
        if cell("digest_ok")? != 1.0 {
            return Err(format!(
                "recovery cell {i}: recovered digest diverged from the pre-crash state"
            ));
        }
    }
    Ok(rows.len())
}

/// Run the suite over the named corpus and write the report.
pub fn write_durable_report(
    path: &str,
    corpus: &str,
    dataset: &Dataset,
    limit: usize,
) -> std::io::Result<DurablePerfReport> {
    let report = run_durable_suite(corpus, dataset, limit);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut d = Dataset::new("t", vec!["name".into()], PairSpace::SelfJoin);
        for i in 0..48 {
            d.push_record(
                SourceId(0),
                vec![format!("tok{} tok{} shared common", i % 4, i % 3)],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let report = run_durable_suite("tiny", &tiny_dataset(), usize::MAX);
        assert_eq!(
            validate_durable_report_json(&report.to_json()),
            Ok(report.recovery.len())
        );
        assert!(report.ops > report.records, "script must go beyond inserts");
        assert!(report.recovery.iter().all(|c| c.digest_ok));
        assert!(report.wal_dir_bytes > 0);
    }

    #[test]
    fn tighter_snapshot_cadence_shortens_the_replayed_suffix() {
        let report = run_durable_suite("tiny", &tiny_dataset(), usize::MAX);
        // Within one log length, a tighter cadence never replays more.
        for w in report.recovery.chunks(DURABLE_SNAP_CADENCES.len()) {
            for pair in w.windows(2) {
                assert!(
                    pair[0].replayed <= pair[1].replayed,
                    "cadence {} replayed {} > cadence {} replayed {}",
                    pair[0].snapshot_every,
                    pair[0].replayed,
                    pair[1].snapshot_every,
                    pair[1].replayed,
                );
            }
        }
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_durable_report_json("").is_err());
        assert!(validate_durable_report_json("{}").is_err());
        assert!(validate_durable_report_json("{\"schema_version\": 999}").is_err());
        let mut report = run_durable_suite("tiny", &tiny_dataset(), usize::MAX);
        report.wal_overhead = DURABLE_MAX_OVERHEAD + 1.0;
        assert!(validate_durable_report_json(&report.to_json())
            .unwrap_err()
            .contains("acceptance bound"));
        report = run_durable_suite("tiny", &tiny_dataset(), usize::MAX);
        report.recovery[0].digest_ok = false;
        assert!(validate_durable_report_json(&report.to_json())
            .unwrap_err()
            .contains("diverged"));
        report.recovery.clear();
        assert!(validate_durable_report_json(&report.to_json())
            .unwrap_err()
            .contains("empty"));
    }
}

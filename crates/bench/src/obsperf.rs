//! Machine-readable overhead report for the observability runtime —
//! `BENCH_obs.json`.
//!
//! The `crowder-obs` contract is that instrumentation is cheap enough
//! to leave compiled in everywhere: a handful of relaxed atomics per
//! counter/histogram op, and *nothing but one relaxed load* per span
//! when no recorder is installed. This suite makes that contract a CI
//! assertion instead of a comment:
//!
//! * **Installed overhead** — streams the corpus through an
//!   [`IncrementalResolver`] twice (min-of-`iters` each way): once with
//!   the recorder paused, once installed. The ratio must stay ≤
//!   [`MAX_INSTALLED_OVERHEAD`].
//! * **No-recorder overhead** — the always-live instruments (counters,
//!   histograms) tick [`crowder_obs::ops_recorded`] on every op, so the
//!   suite counts the ops one streaming run performs, microbenches the
//!   per-op cost in isolation, and bounds the product as a fraction of
//!   the baseline run: ≤ [`MAX_NO_RECORDER_OVERHEAD`].
//! * **Histogram accuracy** — records deterministic distributions into
//!   a log2 [`Histogram`] and compares its p50/p99 against the exact
//!   sorted-oracle percentile: the estimates must land within one
//!   bucket ([`MAX_BUCKET_DELTA`]).
//!
//! Timing bounds are ratios, not absolute numbers, so the check is
//! stable across CI machines. Serialization shares the
//! [`JsonReport`]/[`JsonRow`] writers and [`parse_json`] validator with
//! the other bench reports.

use crate::perf::{parse_json, Json, JsonReport, JsonRow};
use crate::streamperf::{STREAM_BATCH, STREAM_THRESHOLD};
use crowder::prelude::*;
use crowder_obs::hist::{bucket_index, Histogram};
use crowder_obs::stats::percentile_sorted;
use std::time::Instant;

/// Default output path for the observability-overhead report.
pub const OBS_REPORT_PATH: &str = "BENCH_obs.json";

/// Where a quick (restaurant-only) refresh lands — a sibling of
/// [`OBS_REPORT_PATH`] so a smoke run never clobbers the tracked
/// full-scope report. Untracked (gitignored).
pub const OBS_QUICK_REPORT_PATH: &str = "BENCH_obs.quick.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const OBS_SCHEMA_VERSION: u32 = 1;

/// Ceiling on `installed_ns / baseline_ns`: the fully-recorded run may
/// cost at most 5% over the paused run.
pub const MAX_INSTALLED_OVERHEAD: f64 = 1.05;

/// Ceiling on the estimated always-live instrument cost as a fraction
/// of the baseline run: 0.5%.
pub const MAX_NO_RECORDER_OVERHEAD: f64 = 0.005;

/// A histogram percentile estimate may be off by at most this many
/// log2 buckets from the exact oracle.
pub const MAX_BUCKET_DELTA: u32 = 1;

/// One histogram-accuracy comparison: a deterministic distribution's
/// exact percentile vs the log2-bucketed estimate.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Distribution label (`uniform-ramp`, `doubling`, `heavy-tail`).
    pub distribution: String,
    /// Percentile label (`p50`, `p99`).
    pub percentile: String,
    /// Exact value from the sorted oracle.
    pub exact: u64,
    /// Histogram's bucket-midpoint estimate.
    pub estimated: u64,
    /// `|bucket_index(estimated) - bucket_index(exact)|`.
    pub bucket_delta: u32,
}

/// The full observability-overhead report.
#[derive(Debug, Clone)]
pub struct ObsPerfReport {
    /// Corpus streamed (`restaurant`, `product`).
    pub corpus: String,
    /// Samples per timing side.
    pub iters: usize,
    /// Fastest paused-recorder streaming run.
    pub baseline_ns: u128,
    /// Fastest installed-recorder streaming run.
    pub installed_ns: u128,
    /// `installed_ns / baseline_ns`.
    pub installed_overhead: f64,
    /// Instrument ops one streaming run performs (counter adds, gauge
    /// sets, histogram records).
    pub ops_per_run: u64,
    /// Microbenched cost of one always-live instrument op, recorder
    /// paused.
    pub disabled_op_ns: f64,
    /// `disabled_op_ns × ops_per_run / baseline_ns`.
    pub no_recorder_overhead: f64,
    /// Histogram accuracy rows.
    pub accuracy: Vec<AccuracyRow>,
}

/// One full streaming pass: insert every record, regenerating HITs per
/// round — the workload whose instrumentation cost the suite bounds.
/// Returns elapsed wall-clock nanoseconds.
fn stream_once(dataset: &Dataset) -> u128 {
    let config = StreamConfig {
        threshold: STREAM_THRESHOLD,
        ..StreamConfig::default()
    };
    let mut resolver = IncrementalResolver::like(dataset, config);
    let started = Instant::now();
    for chunk in dataset.records().chunks(STREAM_BATCH) {
        for record in chunk {
            resolver
                .insert(record.source, record.fields.clone())
                .expect("schema matches");
        }
        resolver.regenerate_hits().expect("k is valid");
    }
    started.elapsed().as_nanos()
}

/// Fastest paused and fastest installed pass, sampled *interleaved*
/// (pause, run, install, run, repeat) so clock-frequency and cache
/// drift hits both sides equally — sequential phases bias whichever
/// side runs first. Min, not median: the minimum is the least-noisy
/// estimator for a ratio on a shared CI machine. Leaves the recorder
/// paused.
fn interleaved_min(iters: usize, dataset: &Dataset) -> (u128, u128) {
    let mut baseline_ns = u128::MAX;
    let mut installed_ns = u128::MAX;
    for i in 0..iters.max(1) {
        // Alternate which side runs first so within-iteration warming
        // doesn't systematically favor one of them.
        for side in [i % 2 == 0, i % 2 != 0] {
            if side {
                crowder_obs::pause_recorder();
                baseline_ns = baseline_ns.min(stream_once(dataset));
            } else {
                crowder_obs::install_recorder();
                installed_ns = installed_ns.min(stream_once(dataset));
            }
        }
    }
    crowder_obs::pause_recorder();
    (baseline_ns, installed_ns)
}

/// Microbench one always-live instrument op with the recorder paused:
/// the costlier of a counter add and a histogram record, per op.
fn disabled_op_cost_ns() -> f64 {
    const N: u64 = 1_000_000;
    let counter = crowder_obs::global().counter("bench.obsperf.probe_counter");
    let t0 = Instant::now();
    for i in 0..N {
        counter.add(std::hint::black_box(i & 1));
    }
    let counter_ns = t0.elapsed().as_nanos() as f64 / N as f64;
    let hist = crowder_obs::global().histogram("bench.obsperf.probe_hist");
    let t0 = Instant::now();
    for i in 0..N {
        hist.record(std::hint::black_box(i));
    }
    let hist_ns = t0.elapsed().as_nanos() as f64 / N as f64;
    counter_ns.max(hist_ns)
}

/// The deterministic distributions the accuracy check records.
fn accuracy_distributions() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("uniform-ramp", (1..=10_000u64).collect()),
        ("doubling", (0..4096u64).map(|i| 1u64 << (i % 21)).collect()),
        ("heavy-tail", (1..=3_000u64).map(|i| i * i).collect()),
    ]
}

/// Record each distribution into a fresh log2 histogram and compare
/// p50/p99 against the exact sorted oracle.
pub fn accuracy_rows() -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for (label, values) in accuracy_distributions() {
        let hist = Histogram::new(label);
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut sorted: Vec<u128> = values.iter().map(|&v| v as u128).collect();
        sorted.sort_unstable();
        for (pname, p) in [("p50", 0.50), ("p99", 0.99)] {
            let exact = percentile_sorted(&sorted, p) as u64;
            let estimated = snap.percentile(p);
            rows.push(AccuracyRow {
                distribution: label.into(),
                percentile: pname.into(),
                exact,
                estimated,
                bucket_delta: bucket_index(estimated).abs_diff(bucket_index(exact)) as u32,
            });
        }
    }
    rows
}

/// Run the full suite. Leaves the global recorder paused on return.
pub fn run_obs_suite(corpus: &str, dataset: &Dataset, iters: usize) -> ObsPerfReport {
    let iters = iters.max(1);
    crowder_obs::pause_recorder();

    // Warm-up (fills caches, faults in the corpus) and op census.
    let ops_before = crowder_obs::ops_recorded();
    stream_once(dataset);
    let ops_per_run = crowder_obs::ops_recorded() - ops_before;

    let (baseline_ns, installed_ns) = interleaved_min(iters, dataset);

    let disabled_op_ns = disabled_op_cost_ns();
    let no_recorder_overhead = disabled_op_ns * ops_per_run as f64 / baseline_ns.max(1) as f64;

    ObsPerfReport {
        corpus: corpus.into(),
        iters,
        baseline_ns,
        installed_ns,
        installed_overhead: installed_ns as f64 / baseline_ns.max(1) as f64,
        ops_per_run,
        disabled_op_ns,
        no_recorder_overhead,
        accuracy: accuracy_rows(),
    }
}

impl ObsPerfReport {
    /// Serialize to the `BENCH_obs.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", OBS_SCHEMA_VERSION)
            .str("corpus", &self.corpus)
            .num("iters", self.iters)
            .num("baseline_ns", self.baseline_ns)
            .num("installed_ns", self.installed_ns)
            .num("installed_overhead", format_ratio(self.installed_overhead))
            .num("ops_per_run", self.ops_per_run)
            .num("disabled_op_ns", format_ratio(self.disabled_op_ns))
            .num(
                "no_recorder_overhead",
                format_ratio(self.no_recorder_overhead),
            )
            .rows(
                "accuracy",
                self.accuracy.iter().map(|r| {
                    JsonRow::new()
                        .str("distribution", &r.distribution)
                        .str("percentile", &r.percentile)
                        .num("exact", r.exact)
                        .num("estimated", r.estimated)
                        .num("bucket_delta", r.bucket_delta)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "observability overhead ({}, {} samples/side)\n\
             baseline      {}\n\
             installed     {}  (x{:.4}, bound x{MAX_INSTALLED_OVERHEAD})\n\
             no-recorder   {} ops x {:.2} ns = {:.4}% of baseline (bound {:.1}%)\n\n\
             histogram accuracy (log2 buckets, bound {MAX_BUCKET_DELTA} bucket):\n",
            self.corpus,
            self.iters,
            crowder_obs::stats::format_ns(self.baseline_ns),
            crowder_obs::stats::format_ns(self.installed_ns),
            self.installed_overhead,
            self.ops_per_run,
            self.disabled_op_ns,
            self.no_recorder_overhead * 100.0,
            MAX_NO_RECORDER_OVERHEAD * 100.0,
        );
        for r in &self.accuracy {
            s.push_str(&format!(
                "{:<14} {}: exact {:>12} est {:>12} delta {} bucket(s)\n",
                r.distribution, r.percentile, r.exact, r.estimated, r.bucket_delta
            ));
        }
        s
    }
}

/// JSON numbers must not render as `inf`/`NaN`; clamp pathological
/// ratios to a large finite sentinel the validator will still reject.
fn format_ratio(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        1e12
    }
}

/// Validate a `BENCH_obs.json` document: schema presence plus the
/// *bounds themselves* — unlike the other bench validators this one
/// does assert on the measured ratios, because they are
/// machine-independent by construction. Returns the accuracy row count.
pub fn validate_obs_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != OBS_SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {version} != {OBS_SCHEMA_VERSION}"));
    }
    doc.get("corpus")
        .and_then(Json::as_str)
        .ok_or("missing string field corpus")?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))
    };
    for key in ["iters", "baseline_ns", "installed_ns", "ops_per_run"] {
        num(key)?;
    }
    let installed = num("installed_overhead")?;
    if installed > MAX_INSTALLED_OVERHEAD {
        return Err(format!(
            "installed_overhead {installed} exceeds bound {MAX_INSTALLED_OVERHEAD}"
        ));
    }
    num("disabled_op_ns")?;
    let silent = num("no_recorder_overhead")?;
    if silent > MAX_NO_RECORDER_OVERHEAD {
        return Err(format!(
            "no_recorder_overhead {silent} exceeds bound {MAX_NO_RECORDER_OVERHEAD}"
        ));
    }
    let rows = doc
        .get("accuracy")
        .and_then(Json::as_array)
        .ok_or("missing accuracy array")?;
    if rows.is_empty() {
        return Err("accuracy array is empty".into());
    }
    for (i, r) in rows.iter().enumerate() {
        for key in ["distribution", "percentile"] {
            r.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("accuracy {i}: missing string field {key}"))?;
        }
        for key in ["exact", "estimated"] {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("accuracy {i}: missing numeric field {key}"))?;
        }
        let delta = r
            .get("bucket_delta")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("accuracy {i}: missing numeric field bucket_delta"))?;
        if delta > MAX_BUCKET_DELTA as f64 {
            return Err(format!(
                "accuracy {i}: bucket_delta {delta} exceeds bound {MAX_BUCKET_DELTA}"
            ));
        }
    }
    Ok(rows.len())
}

/// Run the suite and write the report — the hook shared by the
/// `bench_obs` binary and CI. Returns the report.
pub fn write_obs_report(
    path: &str,
    corpus: &str,
    dataset: &Dataset,
    iters: usize,
) -> std::io::Result<ObsPerfReport> {
    let report = run_obs_suite(corpus, dataset, iters);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    // No test here toggles the global recorder gate: the full timing
    // suite runs in the `bench_obs` binary (its own process), so these
    // cover the pure pieces — accuracy and the validator.

    #[test]
    fn histogram_percentiles_stay_within_one_bucket_of_the_oracle() {
        let rows = accuracy_rows();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.bucket_delta <= MAX_BUCKET_DELTA,
                "{} {}: exact {} est {} delta {}",
                r.distribution,
                r.percentile,
                r.exact,
                r.estimated,
                r.bucket_delta
            );
        }
    }

    fn tiny_report() -> ObsPerfReport {
        ObsPerfReport {
            corpus: "restaurant".into(),
            iters: 2,
            baseline_ns: 1_000_000,
            installed_ns: 1_020_000,
            installed_overhead: 1.02,
            ops_per_run: 5_000,
            disabled_op_ns: 6.0,
            no_recorder_overhead: 0.00003,
            accuracy: accuracy_rows(),
        }
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let r = tiny_report();
        assert_eq!(validate_obs_report_json(&r.to_json()), Ok(r.accuracy.len()));
    }

    #[test]
    fn validator_rejects_overhead_breaches() {
        let mut r = tiny_report();
        r.installed_overhead = 1.5;
        assert!(validate_obs_report_json(&r.to_json())
            .unwrap_err()
            .contains("installed_overhead"));
        r = tiny_report();
        r.no_recorder_overhead = 0.02;
        assert!(validate_obs_report_json(&r.to_json())
            .unwrap_err()
            .contains("no_recorder_overhead"));
        r = tiny_report();
        r.accuracy[0].bucket_delta = 9;
        assert!(validate_obs_report_json(&r.to_json())
            .unwrap_err()
            .contains("bucket_delta"));
        r = tiny_report();
        r.accuracy.clear();
        assert!(validate_obs_report_json(&r.to_json())
            .unwrap_err()
            .contains("empty"));
        assert!(validate_obs_report_json("{}").is_err());
    }
}

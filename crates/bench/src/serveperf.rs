//! Machine-readable perf report for the concurrent serving layer —
//! `BENCH_serve.json`.
//!
//! Two claims, two sections:
//!
//! 1. **Sharding is free where it cannot help.** The rank-banded,
//!    length-bucketed [`DeltaIndex`](crowder_stream::DeltaIndex) must
//!    not tax the single-threaded path: the full `run_streaming`
//!    pipeline under the sharded layout must keep ≥ 0.9× the
//!    throughput of the unsharded layout (interleaved min-of-iters, so
//!    the comparison is same-machine and machine-independent), and the
//!    two runs must produce bit-identical machine pairs *and*
//!    crowd-verified rankings (`exact`). The validator enforces
//!    **only** these two — exactness and non-regression; absolute
//!    timings are recorded for trend-reading, never asserted.
//! 2. **The service under contention.** A thread matrix (N ingest × M
//!    query threads) drives a `ResolverService`: sustained ingest
//!    records/sec, query latency p50/p99 through the full
//!    queue → worker → group-commit → reply path, and how often
//!    backpressure (`TrySubmit::Full`) fired. On the 1-CPU reference
//!    container the matrix shows queueing effects, not parallel
//!    speedup — the cells are recorded for replay on wider machines.

use crate::perf::{parse_json, Json, JsonReport, JsonRow};
use crowder::prelude::*;
use crowder_obs::stats::{format_ns as fmt_ns, percentile_sorted as percentile};
use crowder_serve::{IngestRecord, ResolverService, ServeConfig, TrySubmit};
use crowder_stream::IndexLayout;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default output path for the serving report.
pub const SERVE_REPORT_PATH: &str = "BENCH_serve.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// Likelihood threshold of both sections (the paper's Product sweet
/// spot, same as `BENCH_stream.json`).
pub const SERVE_THRESHOLD: f64 = 0.3;

/// Shards of the sharded layout under test.
pub const SERVE_SHARDS: usize = 4;

/// One cell of the ingest × query thread matrix.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Concurrent ingest threads.
    pub ingest_threads: usize,
    /// Concurrent query threads.
    pub query_threads: usize,
    /// Records ingested (all acked).
    pub records: usize,
    /// Queries answered while ingest ran.
    pub queries: usize,
    /// Sustained ingest throughput: records / wall time from first
    /// submission to last group-commit ack.
    pub records_per_sec: f64,
    /// End-to-end `resolve()` latency (enqueue → worker → reply), p50.
    pub query_p50_ns: u128,
    /// End-to-end `resolve()` latency, p99.
    pub query_p99_ns: u128,
    /// Backpressure rejections (`TrySubmit::Full`) producers absorbed.
    pub rejections: u64,
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Clone)]
pub struct ServePerfReport {
    /// Cores visible to the run (1 in the reference container: the
    /// matrix is queueing evidence there, not parallelism evidence).
    pub available_parallelism: usize,
    /// Corpus name.
    pub corpus: String,
    /// Corpus size.
    pub records: usize,
    /// Join threshold.
    pub threshold: f64,
    /// Interleaved iterations per baseline side (min taken).
    pub iters: usize,
    /// Shard count of the sharded layout.
    pub shards: usize,
    /// Best full-pipeline `run_streaming` wall time, unsharded layout.
    pub unsharded_ns: u128,
    /// Best full-pipeline `run_streaming` wall time, sharded layout.
    pub sharded_ns: u128,
    /// unsharded / sharded wall-time ratio — the sharded layout's
    /// relative single-thread throughput. Acceptance: ≥ 0.9.
    pub single_thread_ratio: f64,
    /// Sharded and unsharded runs produced bit-identical machine pairs
    /// and crowd rankings.
    pub exact: bool,
    /// The thread matrix.
    pub cells: Vec<ServeCell>,
}

fn streaming_config(layout: IndexLayout) -> StreamingConfig {
    StreamingConfig {
        likelihood_threshold: SERVE_THRESHOLD,
        index_layout: layout,
        ..StreamingConfig::default()
    }
}

/// One full-pipeline streaming run; returns (wall ns, machine pairs,
/// crowd ranking).
fn baseline_run(
    dataset: &Dataset,
    population: &WorkerPopulation,
    layout: IndexLayout,
) -> (u128, Vec<ScoredPair>, Vec<ScoredPair>) {
    let t0 = Instant::now();
    let outcome =
        run_streaming(dataset, population, &streaming_config(layout)).expect("streaming runs");
    let ns = t0.elapsed().as_nanos();
    (ns, outcome.resolver.ranked_pairs(), outcome.ranked)
}

/// Interleaved min-of-iters comparison of the unsharded and sharded
/// single-thread paths, plus the bit-exactness verdict.
fn run_baseline(dataset: &Dataset, iters: usize) -> (u128, u128, bool) {
    let population = WorkerPopulation::generate(&PopulationConfig::default(), 7);
    let unsharded = IndexLayout {
        shards: 1,
        probe_threads: 1,
    };
    let sharded = IndexLayout {
        shards: SERVE_SHARDS,
        probe_threads: 1,
    };
    let mut best_unsharded = u128::MAX;
    let mut best_sharded = u128::MAX;
    let mut exact = true;
    // Interleave A/B so drift (cache state, frequency scaling) hits
    // both sides equally; keep the minimum of each.
    for _ in 0..iters.max(1) {
        let (a_ns, a_pairs, a_ranked) = baseline_run(dataset, &population, unsharded);
        let (b_ns, b_pairs, b_ranked) = baseline_run(dataset, &population, sharded);
        best_unsharded = best_unsharded.min(a_ns);
        best_sharded = best_sharded.min(b_ns);
        exact &= a_pairs == b_pairs && a_ranked == b_ranked;
    }
    (best_unsharded, best_sharded, exact)
}

/// Drive one thread-matrix cell against a fresh service.
fn run_cell(dataset: &Dataset, ingest_threads: usize, query_threads: usize) -> ServeCell {
    let resolver = IncrementalResolver::like(
        dataset,
        crowder_stream::StreamConfig {
            threshold: SERVE_THRESHOLD,
            layout: IndexLayout {
                shards: SERVE_SHARDS,
                probe_threads: 1,
            },
            ..crowder_stream::StreamConfig::default()
        },
    );
    let service = ResolverService::in_memory(
        resolver,
        ServeConfig {
            queue_capacity: 64,
            group_commit_max: 16,
            flush_every_ops: usize::MAX,
        },
    );
    const BATCH: usize = 8;
    let rejections = AtomicU64::new(0);
    let ingest_done = AtomicBool::new(false);
    let records = dataset.records();
    let mut latencies: Vec<Vec<u128>> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut ingest_handles = Vec::new();
        for t in 0..ingest_threads {
            let service = &service;
            let rejections = &rejections;
            ingest_handles.push(scope.spawn(move || {
                // Round-robin split: thread t owns records t, t+N, ...
                let own: Vec<IngestRecord> = records
                    .iter()
                    .skip(t)
                    .step_by(ingest_threads)
                    .map(|r| (r.source, r.fields.clone()))
                    .collect();
                let mut tickets = Vec::new();
                for chunk in own.chunks(BATCH) {
                    let mut batch = chunk.to_vec();
                    loop {
                        match service.try_ingest(batch) {
                            TrySubmit::Accepted(ticket) => {
                                tickets.push(ticket);
                                break;
                            }
                            TrySubmit::Full(rejected) => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                                batch = rejected;
                                std::thread::yield_now();
                            }
                            TrySubmit::Closed(_) => panic!("service closed mid-bench"),
                        }
                    }
                }
                for ticket in tickets {
                    ticket.wait().expect("bench batches are well-formed");
                }
            }));
        }
        let mut query_handles = Vec::new();
        for q in 0..query_threads {
            let service = &service;
            let ingest_done = &ingest_done;
            query_handles.push(scope.spawn(move || {
                let mut ns = Vec::new();
                let mut i = q;
                // Query live while ingest runs; stop with it so the
                // cell measures contention, not an idle tail.
                while !ingest_done.load(Ordering::Relaxed) && ns.len() < 20_000 {
                    let record = &records[i % records.len()];
                    let t = Instant::now();
                    service
                        .resolve(record.source, record.fields.clone())
                        .expect("schema matches");
                    ns.push(t.elapsed().as_nanos());
                    i += query_threads;
                }
                ns
            }));
        }
        for handle in ingest_handles {
            handle.join().unwrap();
        }
        ingest_done.store(true, Ordering::Relaxed);
        for handle in query_handles {
            latencies.push(handle.join().unwrap());
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(
        report.applied_ops,
        records.len() as u64,
        "every record acked exactly once"
    );
    let mut all_ns: Vec<u128> = latencies.into_iter().flatten().collect();
    all_ns.sort_unstable();
    ServeCell {
        ingest_threads,
        query_threads,
        records: records.len(),
        queries: all_ns.len(),
        records_per_sec: records.len() as f64 / elapsed.max(1e-9),
        query_p50_ns: percentile(&all_ns, 0.50),
        query_p99_ns: percentile(&all_ns, 0.99),
        rejections: rejections.load(Ordering::Relaxed),
    }
}

/// Run both sections and assemble the report. `matrix` lists the
/// (ingest, query) thread cells.
pub fn run_serve_suite(
    corpus: &str,
    dataset: &Dataset,
    iters: usize,
    matrix: &[(usize, usize)],
) -> ServePerfReport {
    let (unsharded_ns, sharded_ns, exact) = run_baseline(dataset, iters);
    let cells = matrix
        .iter()
        .map(|&(n, m)| run_cell(dataset, n, m))
        .collect();
    ServePerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        corpus: corpus.into(),
        records: dataset.len(),
        threshold: SERVE_THRESHOLD,
        iters: iters.max(1),
        shards: SERVE_SHARDS,
        unsharded_ns,
        sharded_ns,
        single_thread_ratio: unsharded_ns as f64 / sharded_ns.max(1) as f64,
        exact,
        cells,
    }
}

impl ServePerfReport {
    /// Serialize to the `BENCH_serve.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", SERVE_SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .str("corpus", &self.corpus)
            .num("records", self.records)
            .num("threshold", self.threshold)
            .num("iters", self.iters)
            .num("shards", self.shards)
            .num("unsharded_ns", self.unsharded_ns)
            .num("sharded_ns", self.sharded_ns)
            .num(
                "single_thread_ratio",
                format!("{:.3}", self.single_thread_ratio),
            )
            .num("exact", u8::from(self.exact))
            .rows(
                "cells",
                self.cells.iter().map(|c| {
                    JsonRow::new()
                        .num("ingest_threads", c.ingest_threads)
                        .num("query_threads", c.query_threads)
                        .num("records", c.records)
                        .num("queries", c.queries)
                        .num("records_per_sec", format!("{:.1}", c.records_per_sec))
                        .num("query_p50_ns", c.query_p50_ns)
                        .num("query_p99_ns", c.query_p99_ns)
                        .num("rejections", c.rejections)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "serve perf: {} ({} records, tau {}, {} shard(s), {} core(s))\n\
             single-thread pipeline: unsharded {} vs sharded {} \
             (ratio {:.3}, exact: {})\n\n\
             ingest x query   records/sec   query p50   query p99   rejections\n",
            self.corpus,
            self.records,
            self.threshold,
            self.shards,
            self.available_parallelism,
            fmt_ns(self.unsharded_ns),
            fmt_ns(self.sharded_ns),
            self.single_thread_ratio,
            self.exact,
        );
        for c in &self.cells {
            s.push_str(&format!(
                "{:>6} x {:<5}   {:>11.0}   {:>9}   {:>9}   {:>10}\n",
                c.ingest_threads,
                c.query_threads,
                c.records_per_sec,
                fmt_ns(c.query_p50_ns),
                fmt_ns(c.query_p99_ns),
                c.rejections
            ));
        }
        s
    }
}

/// Validate a `BENCH_serve.json` document. Enforced: schema shape,
/// `exact == 1`, and `single_thread_ratio >= 0.9` — the exactness and
/// non-regression acceptance criteria, both measured same-machine and
/// therefore machine-independent. Absolute timings are deliberately
/// not asserted. Returns the cell count.
pub fn validate_serve_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != SERVE_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != {SERVE_SCHEMA_VERSION}"
        ));
    }
    doc.get("corpus")
        .and_then(Json::as_str)
        .ok_or("missing string field corpus")?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))
    };
    for key in [
        "available_parallelism",
        "records",
        "threshold",
        "iters",
        "shards",
        "unsharded_ns",
        "sharded_ns",
    ] {
        num(key)?;
    }
    if num("exact")? != 1.0 {
        return Err("exact != 1: sharded run diverged from unsharded".into());
    }
    let ratio = num("single_thread_ratio")?;
    if ratio < 0.9 {
        return Err(format!(
            "single_thread_ratio {ratio:.3} < 0.9: sharding regressed the single-thread path"
        ));
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing cells array")?;
    if cells.is_empty() {
        return Err("cells array is empty".into());
    }
    for (i, c) in cells.iter().enumerate() {
        let cnum = |key: &str| -> Result<f64, String> {
            c.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell {i}: missing numeric field {key}"))
        };
        for key in [
            "ingest_threads",
            "query_threads",
            "records",
            "queries",
            "rejections",
        ] {
            cnum(key)?;
        }
        if cnum("records_per_sec")? <= 0.0 {
            return Err(format!("cell {i}: records_per_sec must be positive"));
        }
        if cnum("query_p50_ns")? > cnum("query_p99_ns")? {
            return Err(format!("cell {i}: query percentiles out of order"));
        }
    }
    Ok(cells.len())
}

/// Run the suite over the named corpus and write the report.
pub fn write_serve_report(
    path: &str,
    corpus: &str,
    dataset: &Dataset,
    iters: usize,
    matrix: &[(usize, usize)],
) -> std::io::Result<ServePerfReport> {
    let report = run_serve_suite(corpus, dataset, iters, matrix);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut d = Dataset::new("t", vec!["name".into()], PairSpace::SelfJoin);
        for i in 0..24 {
            d.push_record(
                SourceId(0),
                vec![format!("tok{} tok{} shared common", i % 4, i % 3)],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let report = run_serve_suite("tiny", &tiny_dataset(), 1, &[(1, 1), (2, 1)]);
        assert!(report.exact, "layouts must agree on a tiny corpus");
        assert_eq!(
            validate_serve_report_json(&report.to_json()),
            Ok(report.cells.len())
        );
    }

    #[test]
    fn validation_rejects_a_regressed_ratio() {
        let mut report = run_serve_suite("tiny", &tiny_dataset(), 1, &[(1, 1)]);
        report.single_thread_ratio = 0.5;
        let err = validate_serve_report_json(&report.to_json()).unwrap_err();
        assert!(err.contains("single_thread_ratio"), "{err}");
    }

    #[test]
    fn validation_rejects_inexact_runs() {
        let mut report = run_serve_suite("tiny", &tiny_dataset(), 1, &[(1, 1)]);
        report.exact = false;
        let err = validate_serve_report_json(&report.to_json()).unwrap_err();
        assert!(err.contains("exact"), "{err}");
    }
}

//! # crowder-bench
//!
//! The experiment harness of the CrowdER reproduction. Every table and
//! figure of the paper's evaluation (§7) has a module under
//! [`experiments`] whose `run()` regenerates the corresponding
//! rows/series against the calibrated synthetic datasets, printing paper
//! values next to measured ones. One binary per experiment
//! (`cargo run --release -p crowder-bench --bin fig12`), plus
//! `all_experiments` which runs the full battery and is the source of
//! EXPERIMENTS.md.
//!
//! Criterion micro-benchmarks of the algorithmic substrates live in
//! `benches/`; [`perf`] additionally writes the machine-readable
//! `BENCH_simjoin.json` report (median/min/max per dataset × threshold ×
//! algorithm × threads) that tracks the simjoin perf trajectory across
//! PRs — regenerate it with
//! `cargo run --release -p crowder-bench --bin bench_simjoin`.

pub mod baseline;
pub mod durperf;
pub mod experiments;
pub mod faultperf;
pub mod harness;
pub mod obsperf;
pub mod perf;
pub mod serveperf;
pub mod streamperf;

//! # crowder-bench
//!
//! The experiment harness of the CrowdER reproduction. Every table and
//! figure of the paper's evaluation (§7) has a module under
//! [`experiments`] whose `run()` regenerates the corresponding
//! rows/series against the calibrated synthetic datasets, printing paper
//! values next to measured ones. One binary per experiment
//! (`cargo run --release -p crowder-bench --bin fig12`), plus
//! `all_experiments` which runs the full battery and is the source of
//! EXPERIMENTS.md.
//!
//! Criterion micro-benchmarks of the algorithmic substrates live in
//! `benches/`.

pub mod baseline;
pub mod experiments;
pub mod harness;

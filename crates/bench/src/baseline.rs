//! Pre-interning baseline implementations of the machine pass.
//!
//! These replicate the seed's string-based similarity join — `String`
//! comparisons in the inner merge, a shared `Mutex` for result
//! collection, and per-call vocabulary derivation in the prefix join —
//! so `cargo bench -p crowder-bench --bench simjoin` can report the
//! interned rewrite's speedup against its true predecessor. They are
//! benchmarks-only: production code paths live in `crowder-simjoin`.
//!
//! Both baselines read the string token sets, which production
//! [`TokenTable`]s no longer retain — callers must build the table with
//! [`TokenTable::build_with_sets`].

use crowder_simjoin::TokenTable;
use crowder_types::{Dataset, Pair, PairSpace, RecordId, ScoredPair};
use std::collections::HashMap;
use std::sync::Mutex;

/// Seed-style exhaustive join: string-set Jaccard per pair, worker
/// threads appending into one shared mutex-guarded buffer.
pub fn all_pairs_scored_strings(
    dataset: &Dataset,
    tokens: &TokenTable,
    threshold: f64,
    threads: usize,
) -> Vec<ScoredPair> {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    };
    let results: Mutex<Vec<ScoredPair>> = Mutex::new(Vec::new());
    match dataset.pair_space {
        PairSpace::SelfJoin => {
            let n = dataset.len() as u32;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let results = &results;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut i = t as u32;
                        while i < n {
                            let a = tokens.set(RecordId(i));
                            for j in (i + 1)..n {
                                let b = tokens.set(RecordId(j));
                                let sim = crowder_text::jaccard(a, b);
                                if sim >= threshold {
                                    let pair = Pair::new(RecordId(i), RecordId(j)).expect("i < j");
                                    local.push(ScoredPair::new(pair, sim));
                                }
                            }
                            i += threads as u32;
                        }
                        results.lock().unwrap().append(&mut local);
                    });
                }
            });
        }
        PairSpace::CrossSource(sa, sb) => {
            let a_ids = dataset.source_records(sa);
            let b_ids = dataset.source_records(sb);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let results = &results;
                    let (a_ids, b_ids) = (&a_ids, &b_ids);
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut i = t;
                        while i < a_ids.len() {
                            let a = tokens.set(a_ids[i]);
                            for &b_id in b_ids.iter() {
                                let b = tokens.set(b_id);
                                let sim = crowder_text::jaccard(a, b);
                                if sim >= threshold {
                                    let pair = Pair::new(a_ids[i], b_id)
                                        .expect("distinct sources imply distinct ids");
                                    local.push(ScoredPair::new(pair, sim));
                                }
                            }
                            i += threads;
                        }
                        results.lock().unwrap().append(&mut local);
                    });
                }
            });
        }
    }
    let mut out = results.into_inner().unwrap();
    crowder_types::pair::sort_ranked(&mut out);
    out
}

/// Seed-style prefix join: re-derives the frequency-ordered vocabulary
/// and re-interns every record on *each call*, then runs a
/// single-threaded probe loop with prefix + length filters only (no
/// positional filter).
pub fn prefix_join_strings(
    dataset: &Dataset,
    tokens: &TokenTable,
    threshold: f64,
) -> Vec<ScoredPair> {
    if threshold <= 0.0 {
        return all_pairs_scored_strings(dataset, tokens, threshold, 0);
    }
    let n = dataset.len();

    let mut freq: HashMap<&str, u32> = HashMap::new();
    for r in dataset.records() {
        for tok in tokens.set(r.id).tokens() {
            *freq.entry(tok.as_str()).or_insert(0) += 1;
        }
    }
    let mut vocab: Vec<(&str, u32)> = freq.iter().map(|(&t, &f)| (t, f)).collect();
    vocab.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    let token_id: HashMap<&str, u32> = vocab
        .iter()
        .enumerate()
        .map(|(i, &(t, _))| (t, i as u32))
        .collect();

    let docs: Vec<Vec<u32>> = dataset
        .records()
        .iter()
        .map(|r| {
            let mut ids: Vec<u32> = tokens
                .set(r.id)
                .tokens()
                .iter()
                .map(|t| token_id[t.as_str()])
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (docs[i].len(), i));

    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut out: Vec<ScoredPair> = Vec::new();
    let mut seen: Vec<u32> = vec![u32::MAX; n];
    for (probe_round, &x) in order.iter().enumerate() {
        let doc = &docs[x];
        if doc.is_empty() {
            continue;
        }
        let len_x = doc.len();
        let prefix_len = len_x - (threshold * len_x as f64).ceil() as usize + 1;
        let min_len_y = (threshold * len_x as f64).ceil() as usize;
        for &tok in &doc[..prefix_len] {
            if let Some(postings) = index.get(&tok) {
                for &y in postings {
                    if seen[y] == probe_round as u32 {
                        continue;
                    }
                    seen[y] = probe_round as u32;
                    if docs[y].len() < min_len_y {
                        continue;
                    }
                    let pair = Pair::new(RecordId(x as u32), RecordId(y as u32))
                        .expect("x != y: y was indexed in an earlier round");
                    if !dataset.is_candidate(&pair) {
                        continue;
                    }
                    let sim = crowder_text::jaccard(tokens.set(pair.lo()), tokens.set(pair.hi()));
                    if sim >= threshold {
                        out.push(ScoredPair::new(pair, sim));
                    }
                }
            }
        }
        for &tok in &doc[..prefix_len] {
            index.entry(tok).or_default().push(x);
        }
    }
    crowder_types::pair::sort_ranked(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowder_simjoin::{all_pairs_scored, prefix_join};
    use crowder_types::SourceId;

    /// The baselines must produce the same output as the interned
    /// rewrite, otherwise bench comparisons are apples to oranges.
    #[test]
    fn baselines_agree_with_interned_implementations() {
        let mut d = Dataset::new("t", vec!["name".into()], PairSpace::SelfJoin);
        for name in [
            "iPad Two 16GB WiFi White",
            "iPad 2nd generation 16GB WiFi White",
            "iPhone 4th generation White 16GB",
            "Apple iPhone 4 16GB White",
            "Apple iPhone 3rd generation Black 16GB",
            "iPhone 4 32GB White",
            "Apple iPad2 16GB WiFi White",
            "Apple iPod shuffle 2GB Blue",
            "Apple iPod shuffle USB Cable",
        ] {
            d.push_record(SourceId(0), vec![name.into()]).unwrap();
        }
        let t = TokenTable::build_with_sets(&d);
        for thr in [0.1, 0.3, 0.5, 0.9] {
            let interned = all_pairs_scored(&d, &t, thr, 2);
            assert_eq!(
                interned,
                all_pairs_scored_strings(&d, &t, thr, 2),
                "thr {thr}"
            );
            assert_eq!(interned, prefix_join_strings(&d, &t, thr), "thr {thr}");
            assert_eq!(interned, prefix_join(&d, &t, thr, 2), "thr {thr}");
        }
    }
}

//! Machine-readable churn/fault-tolerance report for the mutable
//! streaming engine — `BENCH_faults.json`.
//!
//! The insert-only report (`BENCH_stream.json`, PR 3) measures the cost
//! of *absorbing one arrival*. This suite measures what the
//! fault-tolerant engine added: the cost of a **churn** workload —
//! arrivals interleaved with record deletions, evidence
//! commits/decommits, and retractions — against the insert-only
//! baseline over the *same corpus*:
//!
//! * per-operation latency percentiles for inserts-under-churn,
//!   deletions (including the ones that split clusters), and
//!   retractions;
//! * cluster-split latency percentiles (a deletion or decommit that
//!   partitions a component pays a BFS over the smaller side);
//! * HIT-regeneration overhead: total flush time under churn vs the
//!   insert-only stream (splits retire and republish HITs the baseline
//!   never touches);
//! * the headline acceptance ratio: mean churn cost per operation vs
//!   mean insert-only cost per arrival — the engine's contract is that
//!   full mutability stays within **10×** of append-only ingest, and
//!   the validator *enforces* that bound (it is workload-relative, so
//!   it holds on any machine, unlike wall-clock assertions).
//!
//! Serialization shares the hand-rolled [`JsonReport`]/[`JsonRow`]
//! writers and the recursive-descent [`parse_json`] validator with the
//! other `BENCH_*.json` reports (see [`crate::perf`]).

use crate::perf::{parse_json, Json, JsonReport, JsonRow};
use crowder::prelude::*;
use crowder_obs::stats::{format_ns as fmt_ns, percentile_sorted as percentile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Default output path for the fault/churn report.
pub const FAULTS_REPORT_PATH: &str = "BENCH_faults.json";

/// Schema version stamped into the report; bump on breaking changes.
pub const FAULTS_SCHEMA_VERSION: u32 = 1;

/// Join threshold of the churn workload (same regime as the streaming
/// report).
pub const FAULTS_THRESHOLD: f64 = 0.3;

/// Arrivals per round.
pub const FAULTS_BATCH: usize = 128;

/// Fraction of a round's arrivals deleted again during the round.
pub const FAULTS_DELETE_FRACTION: f64 = 0.25;

/// The churn/insert-only per-operation cost ratio the validator
/// enforces (the PR's acceptance bound).
pub const FAULTS_MAX_CHURN_RATIO: f64 = 10.0;

/// One per-round row of the churn funnel.
#[derive(Debug, Clone)]
pub struct ChurnRound {
    /// Round index.
    pub round: usize,
    /// Records ingested.
    pub arrived: usize,
    /// Records tombstoned.
    pub deleted: usize,
    /// Evidence votes recorded.
    pub votes: usize,
    /// Evidence retractions applied.
    pub retracted: usize,
    /// Cluster splits (deletions + decommits + vetoes).
    pub splits: usize,
    /// HITs retired / created / left untouched by the flush.
    pub hits_retired: usize,
    /// Newly published HITs.
    pub hits_created: usize,
    /// Live HITs untouched (stable ids).
    pub hits_stable: usize,
    /// Live surfaced pairs after the round.
    pub live_pairs: usize,
}

/// The full churn perf report.
#[derive(Debug, Clone)]
pub struct FaultPerfReport {
    /// Available parallelism of the producing machine.
    pub available_parallelism: usize,
    /// Corpus name (`product`, `restaurant`).
    pub corpus: String,
    /// Records streamed.
    pub records: usize,
    /// Join threshold.
    pub threshold: f64,
    /// Arrivals per round.
    pub batch_size: usize,
    /// Insert-only baseline: total ingest+flush nanoseconds.
    pub baseline_total_ns: u128,
    /// Insert-only baseline: mean cost per arrival (ns).
    pub baseline_per_arrival_ns: u128,
    /// Insert-only baseline: total flush (HIT-regeneration) time.
    pub baseline_regen_ns: u128,
    /// Churn workload: total mutation operations (inserts + deletes +
    /// votes + retractions).
    pub churn_ops: usize,
    /// Churn workload: total nanoseconds (mutations + flushes).
    pub churn_total_ns: u128,
    /// Churn workload: mean cost per operation (ns).
    pub churn_per_op_ns: u128,
    /// Churn workload: total flush time.
    pub churn_regen_ns: u128,
    /// Sustained churn throughput (operations per second).
    pub churn_ops_per_sec: f64,
    /// `churn_per_op_ns / baseline_per_arrival_ns` — the acceptance
    /// ratio, bounded by [`FAULTS_MAX_CHURN_RATIO`].
    pub churn_ratio: f64,
    /// `churn_regen_ns / baseline_regen_ns`: the HIT-regeneration
    /// overhead churn adds (splits retire + republish).
    pub regen_overhead: f64,
    /// Deletion latency percentiles (ns).
    pub delete_p50_ns: u128,
    /// 99th percentile.
    pub delete_p99_ns: u128,
    /// Worst deletion.
    pub delete_max_ns: u128,
    /// Cluster splits observed across the churn run.
    pub splits: usize,
    /// Split-causing deletion latency percentiles (ns).
    pub split_p50_ns: u128,
    /// 99th percentile.
    pub split_p99_ns: u128,
    /// Retraction latency percentiles (ns).
    pub retract_p50_ns: u128,
    /// 99th percentile.
    pub retract_p99_ns: u128,
    /// Records alive at the end of the churn run.
    pub live_records: usize,
    /// Per-round churn funnel rows.
    pub rounds: Vec<ChurnRound>,
}

/// Run the insert-only baseline: stream every record, flush per round.
/// Returns (total_ns, regen_ns).
fn run_baseline(dataset: &Dataset, config: &StreamConfig) -> (u128, u128) {
    let mut resolver = IncrementalResolver::like(dataset, config.clone());
    let mut regen_ns = 0u128;
    let t0 = Instant::now();
    for chunk in dataset.records().chunks(FAULTS_BATCH) {
        for record in chunk {
            resolver
                .insert(record.source, record.fields.clone())
                .expect("schema matches");
        }
        let tr = Instant::now();
        resolver.regenerate_hits().expect("k is valid");
        regen_ns += tr.elapsed().as_nanos();
    }
    (t0.elapsed().as_nanos(), regen_ns)
}

/// Stream `dataset` through a churn workload and measure everything the
/// report carries.
pub fn run_faults_suite(corpus: &str, dataset: &Dataset) -> FaultPerfReport {
    let config = StreamConfig {
        threshold: FAULTS_THRESHOLD,
        ..StreamConfig::default()
    };
    let (baseline_total_ns, baseline_regen_ns) = run_baseline(dataset, &config);

    // Churn workload: per round — insert the chunk, commit evidence on
    // some surfaced pairs, contradict (decommit) and retract others,
    // delete a fraction of this round's arrivals, flush.
    let mut resolver = IncrementalResolver::like(dataset, config.clone());
    let mut rng = StdRng::seed_from_u64(0xFA_17);
    let mut delete_ns: Vec<u128> = Vec::new();
    let mut split_ns: Vec<u128> = Vec::new();
    let mut retract_ns: Vec<u128> = Vec::new();
    let mut rounds = Vec::new();
    let mut churn_ops = 0usize;
    let mut churn_regen_ns = 0u128;
    let mut splits_total = 0usize;
    let t0 = Instant::now();
    for (round, chunk) in dataset.records().chunks(FAULTS_BATCH).enumerate() {
        let mut arrived_ids: Vec<RecordId> = Vec::with_capacity(chunk.len());
        let mut round_pairs: Vec<Pair> = Vec::new();
        for record in chunk {
            let report = resolver
                .insert(record.source, record.fields.clone())
                .expect("schema matches");
            churn_ops += 1;
            arrived_ids.push(report.record);
            round_pairs.extend(report.new_pairs.iter().map(|sp| sp.pair));
        }

        // Evidence churn: commit every third surfaced pair, then flip
        // half of those with contradicting votes (decommit — possible
        // split), and retract the rest outright.
        let mut votes = 0usize;
        let mut retracted = 0usize;
        let mut round_splits = 0usize;
        for (i, &pair) in round_pairs.iter().enumerate().filter(|(i, _)| i % 3 == 0) {
            let rep = resolver.record_evidence(pair, true, 1.0);
            votes += 1;
            churn_ops += 1;
            round_splits += rep.split as usize;
            if i % 6 == 0 {
                let rep = resolver.record_evidence(pair, false, 2.0);
                votes += 1;
                churn_ops += 1;
                round_splits += rep.split as usize;
            } else {
                let tr = Instant::now();
                let rep = resolver.retract(pair);
                retract_ns.push(tr.elapsed().as_nanos());
                retracted += 1;
                churn_ops += 1;
                round_splits += rep.split as usize;
            }
        }

        // Deletion churn: tombstone a deterministic fraction of this
        // round's arrivals (they have live pairs with high likelihood).
        let deletions = ((chunk.len() as f64) * FAULTS_DELETE_FRACTION) as usize;
        let mut deleted = 0usize;
        for _ in 0..deletions {
            let victim = arrived_ids[rng.random_range(0..arrived_ids.len())];
            if !resolver.is_alive(victim) {
                continue;
            }
            let td = Instant::now();
            let report = resolver.remove(victim).expect("victim is alive");
            let dt = td.elapsed().as_nanos();
            delete_ns.push(dt);
            if report.splits > 0 {
                split_ns.push(dt);
                round_splits += report.splits;
            }
            deleted += 1;
            churn_ops += 1;
        }
        splits_total += round_splits;

        let tr = Instant::now();
        let delta = resolver.regenerate_hits().expect("k is valid");
        churn_regen_ns += tr.elapsed().as_nanos();
        rounds.push(ChurnRound {
            round,
            arrived: chunk.len(),
            deleted,
            votes,
            retracted,
            splits: round_splits,
            hits_retired: delta.retired.len(),
            hits_created: delta.created.len(),
            hits_stable: delta.stable,
            live_pairs: resolver.pairs().len(),
        });
    }
    let churn_total_ns = t0.elapsed().as_nanos();

    delete_ns.sort_unstable();
    split_ns.sort_unstable();
    retract_ns.sort_unstable();
    let baseline_per_arrival_ns = baseline_total_ns / dataset.len().max(1) as u128;
    let churn_per_op_ns = churn_total_ns / churn_ops.max(1) as u128;
    FaultPerfReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        corpus: corpus.into(),
        records: dataset.len(),
        threshold: FAULTS_THRESHOLD,
        batch_size: FAULTS_BATCH,
        baseline_total_ns,
        baseline_per_arrival_ns,
        baseline_regen_ns,
        churn_ops,
        churn_total_ns,
        churn_per_op_ns,
        churn_regen_ns,
        churn_ops_per_sec: churn_ops as f64 / (churn_total_ns as f64 / 1e9).max(1e-9),
        churn_ratio: churn_per_op_ns as f64 / baseline_per_arrival_ns.max(1) as f64,
        regen_overhead: churn_regen_ns as f64 / baseline_regen_ns.max(1) as f64,
        delete_p50_ns: percentile(&delete_ns, 0.50),
        delete_p99_ns: percentile(&delete_ns, 0.99),
        delete_max_ns: delete_ns.last().copied().unwrap_or(0),
        splits: splits_total,
        split_p50_ns: percentile(&split_ns, 0.50),
        split_p99_ns: percentile(&split_ns, 0.99),
        retract_p50_ns: percentile(&retract_ns, 0.50),
        retract_p99_ns: percentile(&retract_ns, 0.99),
        live_records: resolver.live_len(),
        rounds,
    }
}

impl FaultPerfReport {
    /// Serialize to the `BENCH_faults.json` schema.
    pub fn to_json(&self) -> String {
        JsonReport::new()
            .num("schema_version", FAULTS_SCHEMA_VERSION)
            .num("available_parallelism", self.available_parallelism)
            .str("corpus", &self.corpus)
            .num("records", self.records)
            .num("threshold", self.threshold)
            .num("batch_size", self.batch_size)
            .num("baseline_total_ns", self.baseline_total_ns)
            .num("baseline_per_arrival_ns", self.baseline_per_arrival_ns)
            .num("baseline_regen_ns", self.baseline_regen_ns)
            .num("churn_ops", self.churn_ops)
            .num("churn_total_ns", self.churn_total_ns)
            .num("churn_per_op_ns", self.churn_per_op_ns)
            .num("churn_regen_ns", self.churn_regen_ns)
            .num(
                "churn_ops_per_sec",
                format!("{:.1}", self.churn_ops_per_sec),
            )
            .num("churn_ratio", format!("{:.3}", self.churn_ratio))
            .num("regen_overhead", format!("{:.3}", self.regen_overhead))
            .num("delete_p50_ns", self.delete_p50_ns)
            .num("delete_p99_ns", self.delete_p99_ns)
            .num("delete_max_ns", self.delete_max_ns)
            .num("splits", self.splits)
            .num("split_p50_ns", self.split_p50_ns)
            .num("split_p99_ns", self.split_p99_ns)
            .num("retract_p50_ns", self.retract_p50_ns)
            .num("retract_p99_ns", self.retract_p99_ns)
            .num("live_records", self.live_records)
            .rows(
                "rounds",
                self.rounds.iter().map(|r| {
                    JsonRow::new()
                        .num("round", r.round)
                        .num("arrived", r.arrived)
                        .num("deleted", r.deleted)
                        .num("votes", r.votes)
                        .num("retracted", r.retracted)
                        .num("splits", r.splits)
                        .num("hits_retired", r.hits_retired)
                        .num("hits_created", r.hits_created)
                        .num("hits_stable", r.hits_stable)
                        .num("live_pairs", r.live_pairs)
                        .build()
                }),
            )
            .build()
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "fault/churn perf: {} ({} records, tau {}, batch {}, {} core(s))\n\
             insert-only baseline: {} / arrival; regen total {}\n\
             churn: {} ops at {} / op ({:.0} ops/sec) — ratio {:.2}x (bound {:.0}x)\n\
             regen overhead vs baseline: {:.2}x\n\
             delete p50 {} / p99 {} / max {}; {} splits (p50 {} / p99 {})\n\
             retract p50 {} / p99 {}; {} of {} records live at end\n\n\
             round  arrive  delete  votes  retract  splits  retired  created  stable  pairs\n",
            self.corpus,
            self.records,
            self.threshold,
            self.batch_size,
            self.available_parallelism,
            fmt_ns(self.baseline_per_arrival_ns),
            fmt_ns(self.baseline_regen_ns),
            self.churn_ops,
            fmt_ns(self.churn_per_op_ns),
            self.churn_ops_per_sec,
            self.churn_ratio,
            FAULTS_MAX_CHURN_RATIO,
            self.regen_overhead,
            fmt_ns(self.delete_p50_ns),
            fmt_ns(self.delete_p99_ns),
            fmt_ns(self.delete_max_ns),
            self.splits,
            fmt_ns(self.split_p50_ns),
            fmt_ns(self.split_p99_ns),
            fmt_ns(self.retract_p50_ns),
            fmt_ns(self.retract_p99_ns),
            self.live_records,
            self.records,
        );
        for r in &self.rounds {
            s.push_str(&format!(
                "{:>5}  {:>6}  {:>6}  {:>5}  {:>7}  {:>6}  {:>7}  {:>7}  {:>6}  {:>5}\n",
                r.round,
                r.arrived,
                r.deleted,
                r.votes,
                r.retracted,
                r.splits,
                r.hits_retired,
                r.hits_created,
                r.hits_stable,
                r.live_pairs
            ));
        }
        s
    }
}

/// Validate a `BENCH_faults.json` document: field presence, ordered
/// percentiles, a well-formed non-empty rounds array, and the
/// acceptance bound `churn_ratio ≤ 10`. The ratio is churn cost per op
/// over insert-only cost per arrival *measured on the same machine in
/// the same run*, so — unlike wall-clock numbers — it is meaningful to
/// assert in CI.
pub fn validate_faults_report_json(input: &str) -> Result<usize, String> {
    let doc = parse_json(input)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != FAULTS_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != {FAULTS_SCHEMA_VERSION}"
        ));
    }
    doc.get("corpus")
        .and_then(Json::as_str)
        .ok_or("missing string field corpus")?;
    let num = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field {key}"))
    };
    for key in [
        "available_parallelism",
        "records",
        "threshold",
        "batch_size",
        "baseline_total_ns",
        "baseline_per_arrival_ns",
        "baseline_regen_ns",
        "churn_ops",
        "churn_total_ns",
        "churn_per_op_ns",
        "churn_regen_ns",
        "churn_ops_per_sec",
        "regen_overhead",
        "delete_max_ns",
        "splits",
        "live_records",
    ] {
        num(key)?;
    }
    let (d50, d99, dmax) = (
        num("delete_p50_ns")?,
        num("delete_p99_ns")?,
        num("delete_max_ns")?,
    );
    if !(d50 <= d99 && d99 <= dmax) {
        return Err("delete latency percentiles out of order".into());
    }
    if num("split_p50_ns")? > num("split_p99_ns")? {
        return Err("split latency percentiles out of order".into());
    }
    if num("retract_p50_ns")? > num("retract_p99_ns")? {
        return Err("retract latency percentiles out of order".into());
    }
    let ratio = num("churn_ratio")?;
    if ratio > FAULTS_MAX_CHURN_RATIO {
        return Err(format!(
            "churn_ratio {ratio} exceeds the {FAULTS_MAX_CHURN_RATIO}x acceptance bound"
        ));
    }
    if num("splits")? < 1.0 {
        return Err("churn workload produced no cluster splits".into());
    }
    let rounds = doc
        .get("rounds")
        .and_then(Json::as_array)
        .ok_or("missing rounds array")?;
    if rounds.is_empty() {
        return Err("rounds array is empty".into());
    }
    for (i, r) in rounds.iter().enumerate() {
        for key in [
            "round",
            "arrived",
            "deleted",
            "votes",
            "retracted",
            "splits",
            "hits_retired",
            "hits_created",
            "hits_stable",
            "live_pairs",
        ] {
            r.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("round {i}: missing numeric field {key}"))?;
        }
    }
    Ok(rounds.len())
}

/// Run the suite over the named corpus and write the report.
pub fn write_faults_report(
    path: &str,
    corpus: &str,
    dataset: &Dataset,
) -> std::io::Result<FaultPerfReport> {
    let report = run_faults_suite(corpus, dataset);
    std::fs::write(path, report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mut d = Dataset::new("t", vec!["name".into()], PairSpace::SelfJoin);
        for i in 0..40 {
            d.push_record(
                SourceId(0),
                vec![format!("tok{} tok{} shared common", i % 4, i % 3)],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn report_roundtrips_through_validation() {
        let report = run_faults_suite("tiny", &tiny_dataset());
        assert_eq!(
            validate_faults_report_json(&report.to_json()),
            Ok(report.rounds.len())
        );
        assert!(report.splits > 0, "churn must exercise cluster splits");
        assert!(report.live_records < report.records);
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_faults_report_json("").is_err());
        assert!(validate_faults_report_json("{}").is_err());
        assert!(validate_faults_report_json("{\"schema_version\": 999}").is_err());
        let mut report = run_faults_suite("tiny", &tiny_dataset());
        report.delete_p50_ns = report.delete_max_ns + 1;
        assert!(validate_faults_report_json(&report.to_json())
            .unwrap_err()
            .contains("percentiles"));
        report = run_faults_suite("tiny", &tiny_dataset());
        report.churn_ratio = FAULTS_MAX_CHURN_RATIO + 1.0;
        assert!(validate_faults_report_json(&report.to_json())
            .unwrap_err()
            .contains("acceptance bound"));
        report = run_faults_suite("tiny", &tiny_dataset());
        report.rounds.clear();
        assert!(validate_faults_report_json(&report.to_json())
            .unwrap_err()
            .contains("empty"));
    }

    #[test]
    fn churn_stays_within_the_acceptance_bound() {
        // The tiny corpus is the worst case for the ratio (fixed costs
        // dominate); even here full mutability must stay within 10x of
        // append-only ingest.
        let report = run_faults_suite("tiny", &tiny_dataset());
        assert!(
            report.churn_ratio <= FAULTS_MAX_CHURN_RATIO,
            "churn ratio {} exceeds bound",
            report.churn_ratio
        );
    }
}

//! Figure 15 — result quality of pair-based vs cluster-based HITs.
//!
//! Same configurations as Figures 13/14 (equal HIT counts, ±QT), but the
//! metric is the precision–recall profile of the aggregated crowd
//! answers. Paper finding: the two HIT shapes deliver *similar* quality.

use crate::harness;
use crowder::prelude::*;
use crowder_aggregate::{DawidSkene, Vote};
use crowder_crowd::simulate;
use crowder_hitgen::Hit;

const RECALL_GRID: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 0.9];

fn quality_curve(dataset: &Dataset, hits: &[Hit], qt: bool, seed: u64) -> Option<PrCurve> {
    let pool = harness::worker_pool(harness::CROWD_SEED);
    let config = harness::crowd_config(seed, qt);
    let outcome = simulate(hits, &dataset.gold, &pool, &config).ok()?;
    let votes: Vec<Vote> = outcome
        .labeled_triples()
        .into_iter()
        .map(|(pair, worker, verdict)| (pair, worker.0 as usize, verdict))
        .collect();
    let ranked = DawidSkene::default().run(&votes).ok()?.ranked;
    Some(pr_curve(&ranked, &dataset.gold))
}

fn run_dataset(dataset: &Dataset, label: &str) -> String {
    let pairs = harness::pairs_at(dataset, 0.2);
    let cluster_hits = TwoTieredGenerator::new()
        .generate(&pairs, 10)
        .expect("cluster generation");
    let per_hit = pairs.len().div_ceil(cluster_hits.len().max(1));
    let pair_hits = generate_pair_hits(&pairs, per_hit).expect("pair generation");

    let mut out = format!(
        "({label}) {}: P{per_hit} vs C10, with and without qualification test\n",
        dataset.name
    );
    let configs: Vec<(String, &[Hit], bool)> = vec![
        (format!("P{per_hit}"), &pair_hits, false),
        ("C10".into(), &cluster_hits, false),
        (format!("P{per_hit} (QT)"), &pair_hits, true),
        ("C10 (QT)".into(), &cluster_hits, true),
    ];
    let curves: Vec<(String, Option<PrCurve>)> = configs
        .into_iter()
        .enumerate()
        .map(|(i, (name, hits, qt))| {
            (
                name,
                quality_curve(dataset, hits, qt, harness::CROWD_SEED + i as u64),
            )
        })
        .collect();

    let mut headers = vec!["recall".to_string()];
    headers.extend(curves.iter().map(|(n, _)| n.clone()));
    let mut table = AsciiTable::new(headers);
    for &recall in &RECALL_GRID {
        let mut cells = vec![format!("{recall:.1}")];
        for (_, curve) in &curves {
            cells.push(match curve {
                Some(c) => harness::pct(precision_at_recall(c, recall)),
                None => "n/a".into(),
            });
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    out
}

/// Regenerate Figure 15(a) and 15(b).
pub fn run() -> String {
    let mut out = harness::header(
        "Figure 15: result quality of pair-based vs cluster-based HITs",
        "cells = interpolated precision of the EM-aggregated crowd ranking",
    );
    out.push_str(&run_dataset(&harness::product_full(), "a"));
    out.push('\n');
    out.push_str(&run_dataset(&harness::product_dup_full(), "b"));
    out.push_str(
        "\nShape check: columns are close to each other at every recall level — the two\n\
         HIT shapes achieve similar quality, as the paper reports.\n",
    );
    out
}

//! §6 — the back-of-the-envelope comparison analysis, regenerated.
//!
//! Prints Example 4's worked numbers, the two extreme cases, the
//! identification-order effect, and a duplicate-density sweep that
//! motivates Figure 13's cluster-HIT advantage — cross-checked against
//! the crowd simulator's measured comparison counts.

use crate::harness;
use crowder::prelude::*;
use crowder_crowd::answer_hit;
use crowder_crowd::{WorkerId, WorkerKind, WorkerProfile};
use crowder_hitgen::comparisons::{
    best_order_comparisons, cluster_comparisons, worst_order_comparisons,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn perfect_worker() -> WorkerProfile {
    WorkerProfile {
        id: WorkerId(0),
        kind: WorkerKind::Diligent,
        sensitivity: 1.0,
        specificity: 1.0,
        seconds_per_comparison: 1.0,
        cluster_affinity: 1.0,
    }
}

/// Regenerate the §6 analysis.
pub fn run() -> String {
    let mut out = harness::header(
        "Section 6: comparison-count analysis of cluster-based HITs",
        "Eq. 1: comparisons = sum_i (n - 1 - sum_{j<i} |e_j|); order matters via Eq. 2",
    );

    // Example 4: HIT {r1, r2, r3, r7} with entities {r1,r2,r7} and {r3}.
    out.push_str("Example 4: cluster HIT {r1, r2, r3, r7}, entities sized [3, 1]\n");
    out.push_str(&format!(
        "  model comparisons (identify e1 first): {}   [paper: 3]\n",
        cluster_comparisons(&[3, 1])
    ));
    out.push_str(&format!(
        "  pair-based HIT for the same 4 checkable pairs: 4 comparisons\n  \
         best order: {}, worst order: {}\n",
        best_order_comparisons(&[3, 1]),
        worst_order_comparisons(&[3, 1]),
    ));

    // Cross-check the model against the simulated worker on Table 1.
    let toy = table1();
    let hit = crowder_hitgen::Hit::cluster([1u32, 2, 3, 7].map(crowder_types::RecordId));
    let mut rng = StdRng::seed_from_u64(0);
    let answer = answer_hit(&perfect_worker(), &hit, &toy.gold, &mut rng);
    out.push_str(&format!(
        "  crowd-simulator measured comparisons for the same HIT: {}\n\n",
        answer.comparisons
    ));

    // Extreme cases.
    out.push_str("Extreme cases for a 10-record HIT:\n");
    out.push_str(&format!(
        "  no duplicates  (10 singleton entities): {} comparisons (= n(n-1)/2)\n",
        cluster_comparisons(&[1; 10])
    ));
    out.push_str(&format!(
        "  all duplicates (1 entity of 10):        {} comparisons (= n-1)\n\n",
        cluster_comparisons(&[10])
    ));

    // Duplicate-density sweep: how the comparison count falls as matches
    // concentrate — the mechanism behind Figure 13(b).
    let mut table = AsciiTable::new([
        "entity sizes (n = 12)",
        "given order",
        "best order",
        "worst order",
    ]);
    for sizes in [
        vec![1usize; 12],
        vec![2; 6],
        vec![3; 4],
        vec![4, 4, 4],
        vec![6, 6],
        vec![6, 3, 2, 1],
        vec![12],
    ] {
        table.row([
            format!("{sizes:?}"),
            cluster_comparisons(&sizes).to_string(),
            best_order_comparisons(&sizes).to_string(),
            worst_order_comparisons(&sizes).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nNote: the paper's prose says ascending-size order minimizes comparisons, but its\n\
         own Eq. 2 and Example 4 imply descending order (weights (m-i) decrease with i);\n\
         we follow the math — see crowder-hitgen::comparisons for the derivation.\n",
    );
    out
}

//! Figure 12 — precision–recall curves of `simjoin`, `SVM`, `hybrid` and
//! `hybrid(QT)` on Restaurant and Product.
//!
//! Paper findings to reproduce: on Restaurant the hybrid workflow matches
//! the learning-based SVM; on Product it beats both machine-only
//! techniques decisively; the qualification test nudges quality up.
//! Also reprints the §7.3 run accounting (Restaurant: 2004 pairs at
//! τ = 0.35 → 112 HITs → $8.40; Product: 8315 pairs at τ = 0.2 →
//! 508 HITs → $38.10).

use crate::harness;
use crowder::prelude::*;
use crowder_learn::SvmProtocol;

const RECALL_GRID: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

struct DatasetRun {
    label: &'static str,
    threshold: f64,
    svm_attrs: Vec<usize>,
    paper_hits: usize,
    paper_cost: f64,
}

fn run_dataset(dataset: &Dataset, cfg: &DatasetRun) -> String {
    let mut out = format!("({}) {} dataset\n", cfg.label, dataset.name);

    // simjoin: machine-only ranked list from the 0.1 floor.
    let machine = simjoin_ranking(dataset, 0.1);
    let machine_curve = pr_curve(&machine, &dataset.gold);

    // SVM: the paper's protocol, 10 trials averaged.
    let candidates: Vec<Pair> = machine.iter().map(|s| s.pair).collect();
    let protocol = SvmProtocol::default();
    let svm_points = match svm_rankings(dataset, &candidates, cfg.svm_attrs.clone(), &protocol) {
        Ok(trials) => svm_average_curve(dataset, &trials, &RECALL_GRID),
        Err(e) => {
            out.push_str(&format!("SVM protocol unavailable: {e}\n"));
            Vec::new()
        }
    };

    // hybrid and hybrid(QT).
    let pool = harness::worker_pool(harness::CROWD_SEED);
    let mut curves = Vec::new();
    for (name, qt) in [("hybrid", false), ("hybrid(QT)", true)] {
        let config = HybridConfig {
            likelihood_threshold: cfg.threshold,
            cluster_size: 10,
            crowd: harness::crowd_config(harness::CROWD_SEED + qt as u64, qt),
            ..HybridConfig::default()
        };
        let outcome = run_hybrid(dataset, &pool, &config).expect("workflow runs");
        let curve = pr_curve(&outcome.ranked, &dataset.gold);
        if !qt {
            out.push_str(&format!(
                "hybrid run: {} pairs (tau = {}) -> {} cluster HITs -> ${:.2} \
                 [paper: {} HITs, ${:.2}]\n",
                outcome.candidate_pairs.len(),
                cfg.threshold,
                outcome.hits.len(),
                outcome.sim.cost_dollars,
                cfg.paper_hits,
                cfg.paper_cost,
            ));
        }
        curves.push((name, curve));
    }

    let mut table = AsciiTable::new(["recall", "simjoin", "SVM", "hybrid", "hybrid(QT)"]);
    for (i, &recall) in RECALL_GRID.iter().enumerate() {
        let svm_p = svm_points.get(i).map_or(0.0, |p| p.precision);
        table.row([
            format!("{recall:.1}"),
            harness::pct(precision_at_recall(&machine_curve, recall)),
            harness::pct(svm_p),
            harness::pct(precision_at_recall(&curves[0].1, recall)),
            harness::pct(precision_at_recall(&curves[1].1, recall)),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Regenerate Figure 12(a) and 12(b).
pub fn run() -> String {
    let mut out = harness::header(
        "Figure 12: hybrid workflow vs machine-based techniques (precision at recall)",
        "cells = interpolated precision; hybrid uses cluster HITs (k = 10), 3 assignments, Dawid-Skene EM",
    );
    out.push_str(&run_dataset(
        &harness::restaurant_full(),
        &DatasetRun {
            label: "a",
            threshold: 0.35,
            svm_attrs: vec![0, 1, 2, 3],
            paper_hits: 112,
            paper_cost: 8.40,
        },
    ));
    out.push('\n');
    out.push_str(&run_dataset(
        &harness::product_full(),
        &DatasetRun {
            label: "b",
            threshold: 0.2,
            svm_attrs: vec![0],
            paper_hits: 508,
            paper_cost: 38.10,
        },
    ));
    out.push_str(
        "\nShape check: (a) hybrid ~ SVM (both high); (b) hybrid dominates simjoin and SVM\n\
         at every recall level, with machine-only precision collapsing by mid recall.\n",
    );
    out
}

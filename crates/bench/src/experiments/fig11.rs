//! Figure 11 — number of cluster-based HITs vs cluster-size threshold
//! k ∈ {5, 10, 15, 20} at likelihood threshold 0.1.
//!
//! Paper finding: the two-tiered approach generates the fewest HITs for
//! every k (1.9–2.3× fewer than the best baseline on Restaurant).

use crate::harness;
use crowder::prelude::*;

const KS: [usize; 4] = [5, 10, 15, 20];
const THRESHOLD: f64 = 0.1;

fn dataset_series(dataset: &Dataset) -> AsciiTable {
    let pairs = harness::pairs_at(dataset, THRESHOLD);
    let mut headers = vec!["generator".to_string()];
    headers.extend(KS.iter().map(|k| format!("k={k}")));
    let mut table = AsciiTable::new(headers);
    for generator in harness::generator_suite(7) {
        let mut cells = vec![generator.name().to_string()];
        for &k in &KS {
            let hits = generator
                .generate(&pairs, k)
                .expect("generation succeeds on machine-pass output");
            cells.push(hits.len().to_string());
        }
        table.row(cells);
    }
    table
}

/// Regenerate Figure 11(a) and 11(b).
pub fn run() -> String {
    let mut out = harness::header(
        "Figure 11: #cluster-based HITs vs cluster-size threshold (tau = 0.1)",
        "series = one generator; x-axis = cluster size k; cells = generated HIT count",
    );
    out.push_str("(a) Restaurant dataset\n");
    out.push_str(&dataset_series(&harness::restaurant_full()).render());
    out.push_str("\n(b) Product dataset\n");
    out.push_str(&dataset_series(&harness::product_full()).render());
    out.push_str(
        "\nShape check: Two-tiered wins every column; the ratio to the best baseline sits\n\
         around the paper's 1.9-2.3x on Restaurant.\n",
    );
    out
}

//! Figures 13 & 14 — pair-based vs cluster-based HIT latency.
//!
//! §7.4 protocol: generate cluster-based HITs (C10, k = 10) at τ = 0.2;
//! generate pair-based HITs with enough pairs per HIT that *both methods
//! publish the same number of HITs* (P16 on Product, P28 on Product+Dup),
//! keeping cost constant. Measure:
//!
//! * **Figure 13** — median completion time per assignment: cluster HITs
//!   are faster to *do* (fewer §6 comparisons, especially with many
//!   duplicates);
//! * **Figure 14** — total elapsed time for the batch: on Product the
//!   familiar pair interface attracts more workers and P16 finishes
//!   first; on Product+Dup the oversized P28 batches repel workers and
//!   C10 wins.

use crate::harness;
use crowder::prelude::*;
use crowder_crowd::simulate;
use crowder_hitgen::Hit;

struct LatencyRow {
    config: String,
    median_secs: f64,
    total_minutes: f64,
}

fn run_dataset(dataset: &Dataset, label: &str) -> (String, Vec<LatencyRow>) {
    let pairs = harness::pairs_at(dataset, 0.2);
    let cluster_hits = TwoTieredGenerator::new()
        .generate(&pairs, 10)
        .expect("cluster generation");
    // Equal-HIT-count rule: ⌈pairs / #clusterHITs⌉ pairs per pair-HIT.
    let per_hit = pairs.len().div_ceil(cluster_hits.len().max(1));
    let pair_hits = generate_pair_hits(&pairs, per_hit).expect("pair generation");

    let mut intro = format!(
        "({label}) {}: {} pairs -> {} cluster HITs (C10) vs {} pair HITs (P{per_hit})\n",
        dataset.name,
        pairs.len(),
        cluster_hits.len(),
        pair_hits.len(),
    );
    let pool = harness::worker_pool(harness::CROWD_SEED);
    let mut rows = Vec::new();
    let variants: Vec<(String, &[Hit], bool)> = vec![
        (format!("P{per_hit}"), &pair_hits, false),
        ("C10".to_string(), &cluster_hits, false),
        (format!("P{per_hit} (QT)"), &pair_hits, true),
        ("C10 (QT)".to_string(), &cluster_hits, true),
    ];
    // The paper ran each experiment three times and reports the average
    // (§7.1); we do the same over three simulation seeds.
    const RUNS: u64 = 3;
    for (name, hits, qt) in variants {
        let (mut median_sum, mut total_sum, mut ok_runs) = (0.0f64, 0.0f64, 0u32);
        for run in 0..RUNS {
            let config = harness::crowd_config(harness::CROWD_SEED + run, qt);
            match simulate(hits, &dataset.gold, &pool, &config) {
                Ok(outcome) => {
                    median_sum += outcome.median_assignment_secs();
                    total_sum += outcome.elapsed_minutes;
                    ok_runs += 1;
                }
                Err(e) => intro.push_str(&format!("{name}: simulation failed: {e}\n")),
            }
        }
        if ok_runs > 0 {
            rows.push(LatencyRow {
                config: name.to_string(),
                median_secs: median_sum / f64::from(ok_runs),
                total_minutes: total_sum / f64::from(ok_runs),
            });
        }
    }
    (intro, rows)
}

/// Regenerate Figures 13(a,b) and 14(a,b).
pub fn run() -> String {
    let mut out = harness::header(
        "Figures 13 & 14: pair-based vs cluster-based HIT latency (tau = 0.2)",
        "Fig 13 metric = median seconds per assignment; Fig 14 metric = minutes to finish the batch",
    );
    let product = harness::product_full();
    let dup = harness::product_dup_full();
    for (dataset, label) in [(&product, "a"), (&dup, "b")] {
        let (intro, rows) = run_dataset(dataset, label);
        out.push_str(&intro);
        let mut table = AsciiTable::new([
            "config",
            "median secs/assignment (Fig 13)",
            "total minutes (Fig 14)",
        ]);
        for row in &rows {
            table.row([
                row.config.clone(),
                format!("{:.1}", row.median_secs),
                format!("{:.1}", row.total_minutes),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out.push_str(
        "Shape check (paper): per-assignment time C10 < P16/P28 everywhere (Fig 13);\n\
         total time P16 < C10 on Product but C10 < P28 on Product+Dup (Fig 14);\n\
         QT variants always take longer end-to-end.\n",
    );
    out
}

//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper, quantifying what each component buys:
//!
//! 1. the top tier's min-outdegree tie-break (Algorithm 2, line 8),
//! 2. the bottom tier's ILP vs plain first-fit-decreasing,
//! 3. Dawid–Skene EM vs majority vote under increasing spam,
//! 4. assignment replication (1 / 3 / 5) vs quality and cost.

use crate::harness;
use crowder::prelude::*;
use crowder_hitgen::TwoTieredConfig;
use crowder_packing::PackingConfig;

fn tiebreak_and_packing(dataset: &Dataset) -> AsciiTable {
    let mut table = AsciiTable::new([
        "tau",
        "full two-tiered",
        "no outdegree tie-break",
        "FFD-only packing",
    ]);
    for tau in [0.3, 0.2, 0.1] {
        let pairs = harness::pairs_at(dataset, tau);
        let count = |config: TwoTieredConfig| {
            TwoTieredGenerator::with_config(config)
                .generate(&pairs, 10)
                .expect("generation succeeds")
                .len()
        };
        table.row([
            format!("{tau:.1}"),
            count(TwoTieredConfig::default()).to_string(),
            count(TwoTieredConfig {
                disable_outdegree_tiebreak: true,
                ..Default::default()
            })
            .to_string(),
            count(TwoTieredConfig {
                packing: PackingConfig {
                    ffd_only: true,
                    ..Default::default()
                },
                ..Default::default()
            })
            .to_string(),
        ]);
    }
    table
}

fn aggregation_vs_spam(dataset: &Dataset) -> AsciiTable {
    let mut table = AsciiTable::new(["spammer fraction", "majority-vote F1", "Dawid-Skene F1"]);
    for spam in [0.0, 0.2, 0.4] {
        let pool = WorkerPopulation::generate(
            &PopulationConfig {
                spammer_fraction: spam,
                ..Default::default()
            },
            harness::CROWD_SEED,
        );
        let f1 = |aggregation: Aggregation| {
            let config = HybridConfig {
                likelihood_threshold: 0.2,
                cluster_size: 10,
                aggregation,
                ..HybridConfig::default()
            };
            let outcome = run_hybrid(dataset, &pool, &config).expect("workflow runs");
            pr_curve(&outcome.ranked, &dataset.gold).max_f1()
        };
        table.row([
            harness::pct(spam),
            format!("{:.3}", f1(Aggregation::MajorityVote)),
            format!("{:.3}", f1(Aggregation::DawidSkene)),
        ]);
    }
    table
}

fn replication_sweep(dataset: &Dataset) -> AsciiTable {
    let pool = harness::worker_pool(harness::CROWD_SEED);
    let mut table = AsciiTable::new(["assignments/HIT", "F1", "cost"]);
    for assignments in [1usize, 3, 5] {
        let config = HybridConfig {
            likelihood_threshold: 0.2,
            cluster_size: 10,
            crowd: CrowdConfig {
                assignments_per_hit: assignments,
                seed: harness::CROWD_SEED,
                ..CrowdConfig::default()
            },
            ..HybridConfig::default()
        };
        let outcome = run_hybrid(dataset, &pool, &config).expect("workflow runs");
        table.row([
            assignments.to_string(),
            format!("{:.3}", pr_curve(&outcome.ranked, &dataset.gold).max_f1()),
            format!("${:.2}", outcome.sim.cost_dollars),
        ]);
    }
    table
}

/// Run the ablation battery (on a mid-sized Product so the full battery
/// stays fast).
pub fn run() -> String {
    let mut out = harness::header(
        "Ablations: what each design choice buys",
        "dataset = Product (mid-size); k = 10; tau as stated",
    );
    let dataset = product(&ProductConfig {
        one_to_one: 400,
        one_to_two: 10,
        two_to_two: 3,
        unmatched_a: 10,
        unmatched_b: 5,
        family_probability: 0.45,
        seed: 4242,
    });
    out.push_str("1) HIT counts: tie-break and packing ablations (fewer is better)\n");
    out.push_str(&tiebreak_and_packing(&dataset).render());
    out.push_str("\n2) Aggregation robustness under spam (higher F1 is better)\n");
    out.push_str(&aggregation_vs_spam(&dataset).render());
    out.push_str("\n3) Assignment replication: quality vs cost\n");
    out.push_str(&replication_sweep(&dataset).render());
    out.push_str(
        "\nExpected: the tie-break and the ILP each shave HITs off the two-tiered output;\n\
         EM's margin over majority vote grows with spam; replication 3 is the paper's\n\
         cost/quality sweet spot.\n",
    );
    out
}

//! Table 2 — likelihood-threshold selection.
//!
//! For each threshold τ: how many pairs survive, how many are true
//! matches, and the recall. The paper's numbers are printed alongside so
//! drift is visible at a glance; absolute counts differ (synthetic
//! datasets), the *shape* is the reproduction target.

use crate::harness;
use crowder::prelude::*;

/// Paper values: (threshold, total pairs, matches, recall %).
const PAPER_RESTAURANT: [(f64, u64, u64, f64); 6] = [
    (0.5, 161, 83, 78.3),
    (0.4, 755, 99, 93.4),
    (0.3, 4_788, 105, 99.1),
    (0.2, 23_944, 106, 100.0),
    (0.1, 83_117, 106, 100.0),
    (0.0, 367_653, 106, 100.0),
];

const PAPER_PRODUCT: [(f64, u64, u64, f64); 6] = [
    (0.5, 637, 335, 30.5),
    (0.4, 1_427, 571, 52.1),
    (0.3, 3_154, 805, 73.4),
    (0.2, 8_315, 1_011, 92.2),
    (0.1, 37_641, 1_090, 99.4),
    (0.0, 1_180_452, 1_097, 100.0),
];

fn sweep_table(dataset: &Dataset, paper: &[(f64, u64, u64, f64)]) -> AsciiTable {
    let thresholds: Vec<f64> = paper.iter().map(|r| r.0).collect();
    let tokens = TokenTable::build(dataset);
    let rows = threshold_sweep(dataset, &tokens, &thresholds);
    let mut table = AsciiTable::new([
        "threshold",
        "pairs",
        "matches",
        "recall",
        "paper pairs",
        "paper matches",
        "paper recall",
    ]);
    for (row, &(thr, p_pairs, p_matches, p_recall)) in rows.iter().zip(paper) {
        table.row([
            format!("{thr:.1}"),
            row.total_pairs.to_string(),
            row.matches.to_string(),
            harness::pct(row.recall),
            p_pairs.to_string(),
            p_matches.to_string(),
            format!("{p_recall:.1}%"),
        ]);
    }
    table
}

/// Regenerate Table 2(a) and 2(b).
pub fn run() -> String {
    let mut out = harness::header(
        "Table 2: likelihood-threshold selection",
        "machine pass = Jaccard over whole-record token sets; recall = matches kept / all matches",
    );
    let restaurant = harness::restaurant_full();
    out.push_str("(a) Restaurant dataset\n");
    out.push_str(&sweep_table(&restaurant, &PAPER_RESTAURANT).render());
    let product = harness::product_full();
    out.push_str("\n(b) Product dataset\n");
    out.push_str(&sweep_table(&product, &PAPER_PRODUCT).render());
    out.push_str(
        "\nShape check: Restaurant recall is already high at tau=0.5 and saturates by 0.2;\n\
         Product recall climbs slowly (heavy cross-source rewrites) and needs tau<=0.2 for >90%.\n",
    );
    out
}

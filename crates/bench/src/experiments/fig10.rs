//! Figure 10 — number of cluster-based HITs vs likelihood threshold
//! (cluster size k = 10), five generators, both datasets.
//!
//! Paper findings to reproduce: the two-tiered approach generates the
//! fewest HITs at every threshold, the gap widens as τ shrinks, BFS is
//! the best baseline, and the Goldschmidt approximation performs poorly
//! on real workload shapes.

use crate::harness;
use crowder::prelude::*;

const THRESHOLDS: [f64; 5] = [0.5, 0.4, 0.3, 0.2, 0.1];
const K: usize = 10;

fn dataset_series(dataset: &Dataset) -> AsciiTable {
    let mut headers = vec!["generator".to_string()];
    headers.extend(THRESHOLDS.iter().map(|t| format!("tau={t:.1}")));
    let mut table = AsciiTable::new(headers);

    // Pair sets per threshold (computed once from the ranked list).
    let pair_sets: Vec<Vec<Pair>> = THRESHOLDS
        .iter()
        .map(|&t| harness::pairs_at(dataset, t))
        .collect();

    for generator in harness::generator_suite(7) {
        let mut cells = vec![generator.name().to_string()];
        for pairs in &pair_sets {
            let hits = generator
                .generate(pairs, K)
                .expect("generation succeeds on machine-pass output");
            cells.push(hits.len().to_string());
        }
        table.row(cells);
    }
    table
}

/// Regenerate Figure 10(a) and 10(b).
pub fn run() -> String {
    let mut out = harness::header(
        "Figure 10: #cluster-based HITs vs likelihood threshold (k = 10)",
        "series = one generator; x-axis = threshold; cells = generated HIT count",
    );
    out.push_str("(a) Restaurant dataset\n");
    out.push_str(&dataset_series(&harness::restaurant_full()).render());
    out.push_str("\n(b) Product dataset\n");
    out.push_str(&dataset_series(&harness::product_full()).render());
    out.push_str(
        "\nShape check: Two-tiered is the minimum of every column; the margin grows as tau\n\
         decreases; BFS-based is the strongest baseline.\n",
    );
    out
}

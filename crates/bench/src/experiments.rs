//! One module per table/figure of the paper's evaluation (§7), plus the
//! §6 analytical model and the ablation battery.

pub mod ablation;
pub mod analysis;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig15;
pub mod table2;

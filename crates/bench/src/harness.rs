//! Shared experiment plumbing: datasets, generator suites, crowd
//! configurations and pair extraction.

use crowder::prelude::*;

/// Seed base for crowd simulations (distinct from dataset seeds).
pub const CROWD_SEED: u64 = 0xC0_FFEE;

/// Build the full-scale Restaurant dataset (858 records / 106 pairs).
pub fn restaurant_full() -> Dataset {
    restaurant(&RestaurantConfig::default())
}

/// Build the full-scale Product dataset (1081 + 1092 records / 1097
/// pairs).
pub fn product_full() -> Dataset {
    product(&ProductConfig::default())
}

/// Build Product+Dup from the full Product per §7.4.
pub fn product_dup_full() -> Dataset {
    product_dup(&product_full(), &ProductDupConfig::default())
}

/// Pairs surviving the machine pass at `threshold` (via the filtered
/// PPJoin+ engine — bit-identical to the exhaustive pass).
pub fn pairs_at(dataset: &Dataset, threshold: f64) -> Vec<Pair> {
    let tokens = TokenTable::build(dataset);
    prefix_join(dataset, &tokens, threshold, 0)
        .iter()
        .map(|s| s.pair)
        .collect()
}

/// The five cluster-HIT generators of §7.2, deterministically seeded.
pub fn generator_suite(seed: u64) -> Vec<Box<dyn ClusterGenerator>> {
    vec![
        Box::new(RandomGenerator::new(seed)),
        Box::new(DfsGenerator),
        Box::new(BfsGenerator),
        Box::new(ApproxGenerator::new(seed)),
        Box::new(TwoTieredGenerator::new()),
    ]
}

/// Standard worker pool used by the crowd experiments.
pub fn worker_pool(seed: u64) -> WorkerPopulation {
    WorkerPopulation::generate(&PopulationConfig::default(), seed)
}

/// The paper's crowd marketplace settings (3 assignments, $0.025).
pub fn crowd_config(seed: u64, qualification: bool) -> CrowdConfig {
    CrowdConfig {
        qualification: qualification.then(QualificationConfig::default),
        seed,
        ..CrowdConfig::default()
    }
}

/// Format a fraction as `12.3%`.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Section header used by every experiment report.
pub fn header(title: &str, subtitle: &str) -> String {
    format!("== {title} ==\n{subtitle}\n\n")
}

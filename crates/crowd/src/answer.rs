//! Answer generation for both HIT shapes.
//!
//! * **Pair-based** (paper Figure 3): each listed pair gets an
//!   independent YES/NO draw from the worker's confusion matrix; one
//!   comparison per pair.
//! * **Cluster-based** (paper Figure 4 + §6): the worker runs the
//!   sequential entity-identification procedure — pick an unlabeled
//!   record, compare it against every remaining unlabeled record, paint
//!   the ones judged equal, repeat. Each of those comparisons is noisy,
//!   but the result is by construction a *partition* (consistent
//!   labeling), exactly like the color-assignment UI; derived pair
//!   verdicts are read off the labels. The §6 comparison count falls out
//!   of the same walk and feeds the latency model.

use crate::worker::WorkerProfile;
use crowder_hitgen::Hit;
use crowder_types::{GoldStandard, Pair, RecordId};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// A completed assignment: verdicts plus effort accounting.
#[derive(Debug, Clone)]
pub struct HitAnswer {
    /// Per-pair verdicts (`true` = "same entity"). For cluster HITs this
    /// covers every pair of records in the HIT.
    pub verdicts: Vec<(Pair, bool)>,
    /// Record comparisons the worker performed (§6 model).
    pub comparisons: usize,
    /// Wall-clock seconds the assignment took this worker.
    pub duration_secs: f64,
}

/// Fixed interface overheads (seconds) — reading instructions, UI
/// manipulation. Cluster HITs carry a higher constant: sorting/dragging
/// rows (paper §3.2 describes both features).
const PAIR_HIT_OVERHEAD_SECS: f64 = 12.0;
const CLUSTER_HIT_OVERHEAD_SECS: f64 = 18.0;
/// Per-record reading cost in a cluster HIT.
const CLUSTER_READ_SECS_PER_RECORD: f64 = 1.0;
/// Relative cost of one comparison in the cluster interface vs the pair
/// interface. A pair-HIT comparison means reading two full records; in
/// the cluster UI the records are co-located, sortable by column and
/// color-grouped (§3.2's two features), so most §6 comparisons are a
/// glance at adjacent rows. Calibrated so a C10 assignment undercuts the
/// equal-cost pair batch by roughly the paper's ~15 % on Product and far
/// more on duplicate-heavy data (Figure 13).
const CLUSTER_COMPARISON_DISCOUNT: f64 = 0.1;
/// Attenuation of *wrong merges* in the cluster interface. A wrong merge
/// is visible — the two records sit in the same colored group, inviting a
/// second look — whereas a missed merge is silent. Without this caution
/// factor a single early wrong merge absorbs a record into the wrong
/// entity and silently destroys its true pairs, which would contradict
/// Figure 15's finding that pair- and cluster-HIT quality are similar.
const CLUSTER_MERGE_CAUTION: f64 = 0.3;

/// Simulate `worker` completing `hit` against ground truth `gold`.
pub fn answer_hit(
    worker: &WorkerProfile,
    hit: &Hit,
    gold: &GoldStandard,
    rng: &mut StdRng,
) -> HitAnswer {
    match hit {
        Hit::PairBased { pairs } => answer_pair_hit(worker, pairs, gold, rng),
        Hit::ClusterBased { records } => answer_cluster_hit(worker, records, gold, rng),
    }
}

fn answer_pair_hit(
    worker: &WorkerProfile,
    pairs: &[Pair],
    gold: &GoldStandard,
    rng: &mut StdRng,
) -> HitAnswer {
    let verdicts: Vec<(Pair, bool)> = pairs
        .iter()
        .map(|p| {
            let truth = gold.is_match(p);
            let yes = rng.random::<f64>() < worker.p_yes(truth);
            (*p, yes)
        })
        .collect();
    let comparisons = pairs.len();
    let duration_secs = PAIR_HIT_OVERHEAD_SECS + comparisons as f64 * worker.seconds_per_comparison;
    HitAnswer {
        verdicts,
        comparisons,
        duration_secs,
    }
}

fn answer_cluster_hit(
    worker: &WorkerProfile,
    records: &[RecordId],
    gold: &GoldStandard,
    rng: &mut StdRng,
) -> HitAnswer {
    // Sequential identification (§6): unlabeled records are scanned in
    // display order; each seed is compared against all records still
    // unlabeled after it.
    let mut label: HashMap<RecordId, usize> = HashMap::with_capacity(records.len());
    let mut comparisons = 0usize;
    let mut next_entity = 0usize;
    for (i, &seed) in records.iter().enumerate() {
        if label.contains_key(&seed) {
            continue;
        }
        let entity = next_entity;
        next_entity += 1;
        label.insert(seed, entity);
        for &other in &records[i + 1..] {
            if label.contains_key(&other) {
                continue;
            }
            comparisons += 1;
            let truth = Pair::new(seed, other)
                .map(|p| gold.is_match(&p))
                .unwrap_or(false);
            let p_merge = if truth {
                worker.p_yes(true)
            } else {
                worker.p_yes(false) * CLUSTER_MERGE_CAUTION
            };
            let judged_same = rng.random::<f64>() < p_merge;
            if judged_same {
                label.insert(other, entity);
            }
        }
    }
    // Derived pairwise verdicts: same label ⇔ YES.
    let mut verdicts = Vec::with_capacity(records.len() * (records.len().saturating_sub(1)) / 2);
    for i in 0..records.len() {
        for j in (i + 1)..records.len() {
            let pair = Pair::new(records[i], records[j]).expect("records are distinct");
            verdicts.push((pair, label[&records[i]] == label[&records[j]]));
        }
    }
    let duration_secs = CLUSTER_HIT_OVERHEAD_SECS
        + records.len() as f64 * CLUSTER_READ_SECS_PER_RECORD
        + comparisons as f64 * worker.seconds_per_comparison * CLUSTER_COMPARISON_DISCOUNT;
    HitAnswer {
        verdicts,
        comparisons,
        duration_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{WorkerId, WorkerKind};
    use crowder_hitgen::comparisons::cluster_comparisons;
    use rand::SeedableRng;

    fn perfect_worker() -> WorkerProfile {
        WorkerProfile {
            id: WorkerId(0),
            kind: WorkerKind::Diligent,
            sensitivity: 1.0,
            specificity: 1.0,
            seconds_per_comparison: 2.0,
            cluster_affinity: 0.5,
        }
    }

    fn ids(v: &[u32]) -> Vec<RecordId> {
        v.iter().map(|&x| RecordId(x)).collect()
    }

    #[test]
    fn perfect_worker_recovers_truth_on_pair_hit() {
        let gold = GoldStandard::from_pairs(vec![Pair::of(1, 2)]);
        let hit = Hit::pairs(vec![Pair::of(1, 2), Pair::of(4, 6)]);
        let mut rng = StdRng::seed_from_u64(0);
        let ans = answer_hit(&perfect_worker(), &hit, &gold, &mut rng);
        assert_eq!(
            ans.verdicts,
            vec![(Pair::of(1, 2), true), (Pair::of(4, 6), false)]
        );
        assert_eq!(ans.comparisons, 2);
    }

    #[test]
    fn paper_example4_comparison_count() {
        // HIT {r1, r2, r3, r7}; r1, r2, r7 are one entity. Display order
        // starts at r1 → 3 comparisons (not 4, and not n(n−1)/2 = 6).
        let gold = GoldStandard::from_clusters(vec![ids(&[1, 2, 7])]);
        let hit = Hit::cluster(ids(&[1, 2, 3, 7]));
        let mut rng = StdRng::seed_from_u64(0);
        let ans = answer_hit(&perfect_worker(), &hit, &gold, &mut rng);
        assert_eq!(ans.comparisons, 3);
        assert_eq!(ans.comparisons, cluster_comparisons(&[3, 1]));
        // All 6 pair verdicts are derived; exactly the 3 entity pairs say
        // YES.
        assert_eq!(ans.verdicts.len(), 6);
        let yes: Vec<Pair> = ans
            .verdicts
            .iter()
            .filter(|(_, v)| *v)
            .map(|(p, _)| *p)
            .collect();
        assert_eq!(yes, vec![Pair::of(1, 2), Pair::of(1, 7), Pair::of(2, 7)]);
    }

    #[test]
    fn cluster_verdicts_are_transitive() {
        // Even a noisy worker produces a partition: verdicts derived from
        // labels can never violate transitivity.
        let gold = GoldStandard::from_clusters(vec![ids(&[0, 1, 2])]);
        let hit = Hit::cluster(ids(&[0, 1, 2, 3, 4]));
        let noisy = WorkerProfile {
            sensitivity: 0.6,
            specificity: 0.6,
            ..perfect_worker()
        };
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ans = answer_hit(&noisy, &hit, &gold, &mut rng);
            let verdict: HashMap<Pair, bool> = ans.verdicts.iter().copied().collect();
            let recs = ids(&[0, 1, 2, 3, 4]);
            for a in 0..recs.len() {
                for b in (a + 1)..recs.len() {
                    for c in (b + 1)..recs.len() {
                        let ab = verdict[&Pair::new(recs[a], recs[b]).unwrap()];
                        let bc = verdict[&Pair::new(recs[b], recs[c]).unwrap()];
                        let ac = verdict[&Pair::new(recs[a], recs[c]).unwrap()];
                        if ab && bc {
                            assert!(ac, "transitivity violated (seed {seed})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn all_duplicates_cost_n_minus_1() {
        // §6 extreme case: a cluster HIT whose records all match needs
        // n − 1 comparisons.
        let gold = GoldStandard::from_clusters(vec![ids(&[0, 1, 2, 3, 4])]);
        let hit = Hit::cluster(ids(&[0, 1, 2, 3, 4]));
        let mut rng = StdRng::seed_from_u64(1);
        let ans = answer_hit(&perfect_worker(), &hit, &gold, &mut rng);
        assert_eq!(ans.comparisons, 4);
    }

    #[test]
    fn no_duplicates_cost_all_pairs() {
        // §6 extreme case: all-distinct records need n(n−1)/2.
        let gold = GoldStandard::new();
        let hit = Hit::cluster(ids(&[0, 1, 2, 3]));
        let mut rng = StdRng::seed_from_u64(1);
        let ans = answer_hit(&perfect_worker(), &hit, &gold, &mut rng);
        assert_eq!(ans.comparisons, 6);
    }

    #[test]
    fn durations_scale_with_comparisons() {
        let gold = GoldStandard::new();
        let mut rng = StdRng::seed_from_u64(2);
        let small = answer_hit(
            &perfect_worker(),
            &Hit::pairs(vec![Pair::of(0, 1)]),
            &gold,
            &mut rng,
        );
        let large = answer_hit(
            &perfect_worker(),
            &Hit::pairs((0..16).map(|i| Pair::of(2 * i, 2 * i + 1)).collect()),
            &gold,
            &mut rng,
        );
        assert!(large.duration_secs > small.duration_secs);
    }
}

//! Qualification tests (§7.1).
//!
//! *"The qualification test consists of three pairs of records. For each
//! one, a worker needs to decide whether or not they match. Workers must
//! get all three pairs correct to pass."* The paper credits the test
//! with two effects: weeding out spammers and making workers read the
//! instructions more carefully; both are modeled here.

use crate::worker::WorkerProfile;
use rand::rngs::StdRng;
use rand::Rng;

/// Qualification-test parameters.
#[derive(Debug, Clone)]
pub struct QualificationConfig {
    /// Number of matching pairs in the test.
    pub matching_questions: usize,
    /// Number of non-matching pairs in the test.
    pub non_matching_questions: usize,
    /// Attention boost applied to passing diligent workers (see
    /// [`WorkerProfile::with_attention_boost`]).
    pub attention_boost: f64,
}

impl Default for QualificationConfig {
    /// The paper's three-question test (we split it 2 matching + 1
    /// non-matching) with a moderate attention boost.
    fn default() -> Self {
        QualificationConfig {
            matching_questions: 2,
            non_matching_questions: 1,
            attention_boost: 0.35,
        }
    }
}

impl QualificationConfig {
    /// Simulate one worker taking the test. Returns the (boosted)
    /// profile on a pass, `None` on a fail.
    pub fn administer(&self, worker: &WorkerProfile, rng: &mut StdRng) -> Option<WorkerProfile> {
        for _ in 0..self.matching_questions {
            let answered_yes = rng.random::<f64>() < worker.p_yes(true);
            if !answered_yes {
                return None;
            }
        }
        for _ in 0..self.non_matching_questions {
            let answered_yes = rng.random::<f64>() < worker.p_yes(false);
            if answered_yes {
                return None;
            }
        }
        Some(worker.clone().with_attention_boost(self.attention_boost))
    }

    /// Closed-form pass probability for a worker (used by tests and by
    /// capacity planning in the budget example).
    pub fn pass_probability(&self, worker: &WorkerProfile) -> f64 {
        worker.sensitivity.powi(self.matching_questions as i32)
            * worker.specificity.powi(self.non_matching_questions as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{WorkerId, WorkerKind};
    use rand::SeedableRng;

    fn worker(kind: WorkerKind, sens: f64, spec: f64) -> WorkerProfile {
        WorkerProfile {
            id: WorkerId(0),
            kind,
            sensitivity: sens,
            specificity: spec,
            seconds_per_comparison: 2.0,
            cluster_affinity: 0.5,
        }
    }

    #[test]
    fn always_yes_spammer_always_fails() {
        // The non-matching question catches them with certainty.
        let cfg = QualificationConfig::default();
        let w = worker(WorkerKind::AlwaysYesSpammer, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(cfg.administer(&w, &mut rng).is_none());
        }
        assert_eq!(cfg.pass_probability(&w), 0.0);
    }

    #[test]
    fn perfect_worker_always_passes_with_boost() {
        let cfg = QualificationConfig::default();
        let w = worker(WorkerKind::Diligent, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let passed = cfg.administer(&w, &mut rng).expect("must pass");
        assert_eq!(passed.sensitivity, 1.0);
    }

    #[test]
    fn empirical_pass_rate_matches_closed_form() {
        let cfg = QualificationConfig::default();
        let w = worker(WorkerKind::Diligent, 0.9, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let passes = (0..trials)
            .filter(|_| cfg.administer(&w, &mut rng).is_some())
            .count();
        let empirical = passes as f64 / trials as f64;
        let expected = cfg.pass_probability(&w); // 0.81 · 0.8 = 0.648
        assert!(
            (empirical - expected).abs() < 0.02,
            "{empirical} vs {expected}"
        );
    }

    #[test]
    fn random_spammer_passes_only_one_in_eight() {
        let cfg = QualificationConfig::default();
        let w = worker(WorkerKind::RandomSpammer, 0.5, 0.5);
        assert!((cfg.pass_probability(&w) - 0.125).abs() < 1e-12);
    }
}

//! The event-driven HIT marketplace.
//!
//! Models the AMT mechanics the paper's experiments depend on:
//!
//! * every HIT is replicated into `assignments_per_hit` assignments, each
//!   guaranteed to be done by a *different* worker (§7.1),
//! * workers arrive as a Poisson process, browse open HITs (a
//!   Fenwick-indexed uniform sample — see [`crate::sampler`]), and accept
//!   based on perceived effort — the number of record rows the interface
//!   shows — and their familiarity with the HIT shape. This acceptance
//!   model is what reproduces Figure 14: pair-based HITs look familiar
//!   and attract more workers, *unless* the batch is so large (P28) that
//!   the constant price no longer justifies the effort,
//! * an optional qualification test gates first-time workers; failures
//!   leave, and the extra friction deters arrivals (the paper measured
//!   4.5 h → 19.9 h on Product),
//! * payment is per assignment: reward + platform fee
//!   ($0.02 + $0.005 in §7.1).

use crate::answer::{answer_hit, HitAnswer};
use crate::population::WorkerPopulation;
use crate::qualification::QualificationConfig;
use crate::sampler::OpenHitSampler;
use crate::worker::{WorkerId, WorkerProfile};
use crowder_hitgen::Hit;
use crowder_types::{Error, GoldStandard, Pair, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Marketplace configuration.
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// Assignments per HIT (the paper uses 3).
    pub assignments_per_hit: usize,
    /// Reward per assignment in dollars (paper: $0.02).
    pub reward_per_assignment: f64,
    /// Platform fee per assignment in dollars (paper: $0.005).
    pub fee_per_assignment: f64,
    /// Optional qualification test.
    pub qualification: Option<QualificationConfig>,
    /// Worker arrivals per simulated minute.
    pub arrival_rate_per_min: f64,
    /// Mean HITs a worker attempts per session (geometric).
    pub mean_session_hits: f64,
    /// How many open HITs a browsing worker considers per session.
    pub browse_limit: usize,
    /// Effort scale (record rows) of the acceptance model; larger means
    /// workers tolerate bigger HITs.
    pub effort_scale_rows: f64,
    /// Probability that an arriving worker engages with a batch that
    /// requires a qualification test at all (the rest browse away) —
    /// friction beyond the pass/fail filtering itself.
    pub qualification_friction: f64,
    /// Simulated minutes after which the session stops handing out new
    /// assignments. Assignments *accepted* before the deadline still
    /// complete, but land in [`SimOutcome::in_flight`] instead of
    /// `assignments` when they finish past it — the caller (the
    /// streaming workflow) delivers their answers next round. `None`
    /// (the default) runs until the batch completes, as the batch
    /// workflow expects.
    pub session_deadline_min: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            assignments_per_hit: 3,
            reward_per_assignment: 0.02,
            fee_per_assignment: 0.005,
            qualification: None,
            arrival_rate_per_min: 2.0,
            mean_session_hits: 8.0,
            browse_limit: 40,
            effort_scale_rows: 40.0,
            qualification_friction: 0.35,
            session_deadline_min: None,
            seed: 0,
        }
    }
}

/// One completed assignment.
#[derive(Debug, Clone)]
pub struct AssignmentRecord {
    /// Index of the HIT in the published batch.
    pub hit_index: usize,
    /// Worker who completed it.
    pub worker: WorkerId,
    /// Verdicts and effort.
    pub answer: HitAnswer,
    /// Simulation minute at which the worker accepted.
    pub accepted_at_min: f64,
    /// Simulation minute at which the assignment was submitted.
    pub completed_at_min: f64,
}

/// Result of simulating a full batch.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Assignments completed within the session (before the deadline,
    /// if one is set).
    pub assignments: Vec<AssignmentRecord>,
    /// Assignments accepted before the session deadline but submitted
    /// after it. Their answers address *pairs*, not HIT ids, so the
    /// caller can deliver them in a later round even if the HITs they
    /// came from have been retired by then. Empty without a deadline.
    pub in_flight: Vec<AssignmentRecord>,
    /// Minutes from publication until the last assignment finished.
    pub elapsed_minutes: f64,
    /// Payment for the *completed* assignments; in-flight work is paid
    /// on delivery.
    pub cost_dollars: f64,
    /// Distinct workers who completed at least one assignment.
    pub workers_participated: usize,
}

impl SimOutcome {
    /// Median per-assignment duration in seconds (Figure 13's metric).
    pub fn median_assignment_secs(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        let mut durations: Vec<f64> = self
            .assignments
            .iter()
            .map(|a| a.answer.duration_secs)
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mid = durations.len() / 2;
        if durations.len() % 2 == 1 {
            durations[mid]
        } else {
            (durations[mid - 1] + durations[mid]) / 2.0
        }
    }

    /// Flatten the completed assignments to `(pair, worker, verdict)`
    /// triples — the input shape of the Dawid–Skene aggregator.
    pub fn labeled_triples(&self) -> Vec<(Pair, WorkerId, bool)> {
        labeled_triples_of(&self.assignments)
    }
}

/// Flatten any assignment slice to `(pair, worker, verdict)` triples —
/// used for both a session's completed work and carried-over in-flight
/// assignments.
pub fn labeled_triples_of(assignments: &[AssignmentRecord]) -> Vec<(Pair, WorkerId, bool)> {
    let mut out = Vec::new();
    for a in assignments {
        for &(pair, verdict) in &a.answer.verdicts {
            out.push((pair, a.worker, verdict));
        }
    }
    out
}

/// Per-worker platform history carried *across* sessions. The
/// streaming workflow threads one of these through its rounds so
/// experience-dependent archetypes (sleepers, flippers — see
/// [`WorkerProfile::at_experience`]) evolve over the whole run, not
/// per session.
#[derive(Debug, Clone, Default)]
pub struct SessionState {
    completed: HashMap<WorkerId, u32>,
}

impl SessionState {
    /// A blank history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assignments `worker` has completed across all sessions so far.
    #[inline]
    pub fn completed_by(&self, worker: WorkerId) -> u32 {
        self.completed.get(&worker).copied().unwrap_or(0)
    }

    /// Total assignments recorded across all workers.
    pub fn total_completed(&self) -> u64 {
        self.completed.values().map(|&c| c as u64).sum()
    }
}

/// Perceived-effort acceptance probability.
///
/// The visible effort of a HIT is its record-row count: a pair HIT with
/// `m` pairs shows `2m` rows; a cluster HIT with `n` records shows `n`
/// rows but an unfamiliar interface, discounted by the worker's
/// `cluster_affinity`.
fn acceptance_probability(worker: &WorkerProfile, hit: &Hit, config: &CrowdConfig) -> f64 {
    let p = match hit {
        Hit::PairBased { pairs } => {
            let rows = 2.0 * pairs.len() as f64;
            (-rows / config.effort_scale_rows).exp()
        }
        Hit::ClusterBased { records } => {
            let rows = records.len() as f64;
            worker.cluster_affinity * (-rows / config.effort_scale_rows).exp()
        }
    };
    p.max(0.01)
}

/// Per-worker platform state across sessions.
enum QualificationState {
    NotTaken,
    Failed,
    Passed(WorkerProfile),
}

/// Simulate publishing `hits` to the crowd with a blank worker
/// history.
///
/// Returns an error if the batch cannot be completed within the arrival
/// budget (pathological configurations only: empty worker pool, or more
/// assignments per HIT than workers).
pub fn simulate(
    hits: &[Hit],
    gold: &GoldStandard,
    population: &WorkerPopulation,
    config: &CrowdConfig,
) -> Result<SimOutcome> {
    simulate_session(hits, gold, population, config, &mut SessionState::new())
}

/// Simulate one crowd session, threading per-worker completion counts
/// through `state` so experience-dependent archetypes carry across
/// sessions. With [`CrowdConfig::session_deadline_min`] set, the
/// session stops accepting at the deadline and reports late-finishing
/// accepted work in [`SimOutcome::in_flight`] instead of erroring on an
/// incomplete batch.
pub fn simulate_session(
    hits: &[Hit],
    gold: &GoldStandard,
    population: &WorkerPopulation,
    config: &CrowdConfig,
    state: &mut SessionState,
) -> Result<SimOutcome> {
    let _timer = crowder_obs::span!("crowd.session.simulate_ns");
    if config.assignments_per_hit == 0 {
        return Err(Error::InvalidConfig {
            param: "assignments_per_hit",
            message: "must be at least 1".into(),
        });
    }
    if hits.is_empty() {
        crowder_obs::counter!("crowd.session.sessions").incr();
        return Ok(SimOutcome {
            assignments: Vec::new(),
            in_flight: Vec::new(),
            elapsed_minutes: 0.0,
            cost_dollars: 0.0,
            workers_participated: 0,
        });
    }
    if population.len() < config.assignments_per_hit {
        return Err(Error::InvalidConfig {
            param: "population",
            message: format!(
                "{} workers cannot satisfy {} distinct assignments per HIT",
                population.len(),
                config.assignments_per_hit
            ),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut remaining: Vec<usize> = vec![config.assignments_per_hit; hits.len()];
    let mut done_by: Vec<HashSet<WorkerId>> = vec![HashSet::new(); hits.len()];
    // Fenwick-indexed open set: a browse session samples
    // `browse_limit` open HITs in O(browse_limit · log n) instead of
    // scanning the whole open list.
    let mut sampler = OpenHitSampler::new(hits.len());
    let mut qual_state: HashMap<WorkerId, QualificationState> = HashMap::new();
    let mut assignments: Vec<AssignmentRecord> = Vec::new();
    let mut participants: HashSet<WorkerId> = HashSet::new();
    // Per-archetype answer tallies, published as counters once at
    // session end so the hot loop never touches the registry lock.
    let mut answers_by_kind: HashMap<&'static str, u64> = HashMap::new();
    // A worker who re-arrives before finishing an earlier session picks
    // up work only after it — personal timelines never overlap.
    let mut busy_until: HashMap<WorkerId, f64> = HashMap::new();

    let mut clock_min = 0.0f64;
    let total_needed = hits.len() * config.assignments_per_hit;
    // Arrival budget: generous multiple of the workload; hitting it means
    // the configuration starves (reported as an error, not a hang).
    let max_arrivals = 200 * total_needed + 10_000;

    for _arrival in 0..max_arrivals {
        if assignments.len() == total_needed {
            break;
        }
        // Poisson arrivals: exponential inter-arrival gap.
        let u: f64 = rng.random::<f64>().max(1e-12);
        clock_min += -u.ln() / config.arrival_rate_per_min;
        if let Some(deadline) = config.session_deadline_min {
            if clock_min > deadline {
                break;
            }
        }

        let widx = rng.random_range(0..population.len());
        let base_worker = &population.workers()[widx];

        // Qualification friction: a required test deters many arriving
        // workers from engaging with the batch at all — the paper's
        // "steep cost in terms of latency" (4.5 h → 19.9 h on Product)
        // comes from this thinning of the effective arrival rate.
        if config.qualification.is_some() && rng.random::<f64>() >= config.qualification_friction {
            continue;
        }

        // Qualification gate (taken once per worker).
        let effective: WorkerProfile = match &config.qualification {
            None => base_worker.clone(),
            Some(qt) => {
                let state = qual_state
                    .entry(base_worker.id)
                    .or_insert(QualificationState::NotTaken);
                if matches!(state, QualificationState::NotTaken) {
                    *state = match qt.administer(base_worker, &mut rng) {
                        Some(boosted) => QualificationState::Passed(boosted),
                        None => QualificationState::Failed,
                    };
                }
                match state {
                    QualificationState::Passed(p) => p.clone(),
                    QualificationState::Failed => continue,
                    QualificationState::NotTaken => unreachable!("state set above"),
                }
            }
        };

        // Session: browse up to `browse_limit` random open HITs, accept
        // each with the effort model, stop after the geometric budget.
        let session_budget = geometric(config.mean_session_hits, &mut rng);
        let mut worker_time = clock_min.max(busy_until.get(&effective.id).copied().unwrap_or(0.0));
        let mut completed_this_session = 0usize;
        let browse = sampler.sample(config.browse_limit, &mut rng);
        for &hit_idx in &browse {
            if completed_this_session >= session_budget {
                break;
            }
            // No assignment starts after the session closes — a worker
            // whose personal backlog runs past the deadline stops
            // picking up new work.
            if config
                .session_deadline_min
                .is_some_and(|deadline| worker_time > deadline)
            {
                break;
            }
            if done_by[hit_idx].contains(&effective.id) {
                continue;
            }
            let p = acceptance_probability(&effective, &hits[hit_idx], config);
            if rng.random::<f64>() >= p {
                continue;
            }
            // Adversarial archetypes answer with an experience-
            // dependent profile (a sleeper turns after its onset, a
            // flipper alternates) — honest kinds are unaffected.
            let answering = effective.at_experience(state.completed_by(effective.id));
            let answer = answer_hit(&answering, &hits[hit_idx], gold, &mut rng);
            let accepted_at = worker_time;
            worker_time += answer.duration_secs / 60.0;
            remaining[hit_idx] -= 1;
            if remaining[hit_idx] == 0 {
                sampler.close(hit_idx);
            }
            done_by[hit_idx].insert(effective.id);
            participants.insert(effective.id);
            *answers_by_kind.entry(effective.kind_name()).or_insert(0) += 1;
            *state.completed.entry(effective.id).or_insert(0) += 1;
            assignments.push(AssignmentRecord {
                hit_index: hit_idx,
                worker: effective.id,
                answer,
                accepted_at_min: accepted_at,
                completed_at_min: worker_time,
            });
            completed_this_session += 1;
        }
        busy_until.insert(effective.id, worker_time);
    }

    let in_flight = match config.session_deadline_min {
        None => {
            // No deadline: the batch must complete (as in the batch
            // workflow); a shortfall means the configuration starves.
            if assignments.len() < total_needed {
                return Err(Error::NoConvergence {
                    routine: "crowd-simulation",
                    iterations: max_arrivals,
                });
            }
            Vec::new()
        }
        Some(deadline) => {
            // Accepted-but-late work carries over to the next session.
            let (done, late): (Vec<_>, Vec<_>) = assignments
                .drain(..)
                .partition(|a| a.completed_at_min <= deadline);
            assignments = done;
            late
        }
    };

    let elapsed_minutes = assignments
        .iter()
        .chain(&in_flight)
        .map(|a| a.completed_at_min)
        .fold(0.0, f64::max);
    let cost_dollars =
        assignments.len() as f64 * (config.reward_per_assignment + config.fee_per_assignment);

    crowder_obs::counter!("crowd.session.sessions").incr();
    crowder_obs::counter!("crowd.session.hits_published").add(hits.len() as u64);
    crowder_obs::counter!("crowd.session.assignments_completed").add(assignments.len() as u64);
    crowder_obs::counter!("crowd.session.assignments_in_flight").add(in_flight.len() as u64);
    if crowder_obs::recording() {
        for a in &assignments {
            let latency_ms = ((a.completed_at_min - a.accepted_at_min) * 60_000.0).max(0.0) as u64;
            crowder_obs::histogram!("crowd.session.assignment_latency_ms").record(latency_ms);
        }
    }
    for (kind, n) in &answers_by_kind {
        crowder_obs::global()
            .counter(&format!("crowd.session.answers.{kind}"))
            .add(*n);
    }

    Ok(SimOutcome {
        workers_participated: participants.len(),
        assignments,
        in_flight,
        elapsed_minutes,
        cost_dollars,
    })
}

/// Geometric session budget with the given mean (≥ 1).
fn geometric(mean: f64, rng: &mut StdRng) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut n = 1usize;
    while rng.random::<f64>() > p && n < 1000 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use crowder_types::RecordId;

    fn small_world() -> (Vec<Hit>, GoldStandard, WorkerPopulation) {
        let hits = vec![
            Hit::pairs(vec![Pair::of(0, 1), Pair::of(2, 3)]),
            Hit::cluster([RecordId(0), RecordId(1), RecordId(4)]),
            Hit::pairs(vec![Pair::of(4, 5)]),
        ];
        let gold = GoldStandard::from_pairs(vec![Pair::of(0, 1)]);
        let pop = WorkerPopulation::generate(
            &PopulationConfig {
                size: 60,
                ..Default::default()
            },
            11,
        );
        (hits, gold, pop)
    }

    #[test]
    fn completes_all_assignments_with_distinct_workers() {
        let (hits, gold, pop) = small_world();
        let cfg = CrowdConfig::default();
        let out = simulate(&hits, &gold, &pop, &cfg).unwrap();
        assert_eq!(out.assignments.len(), hits.len() * cfg.assignments_per_hit);
        for hit_idx in 0..hits.len() {
            let workers: HashSet<WorkerId> = out
                .assignments
                .iter()
                .filter(|a| a.hit_index == hit_idx)
                .map(|a| a.worker)
                .collect();
            assert_eq!(workers.len(), cfg.assignments_per_hit, "hit {hit_idx}");
        }
        assert!(out.elapsed_minutes > 0.0);
    }

    #[test]
    fn personal_timelines_never_overlap() {
        // Pins the `busy_until` behavior: a worker who re-arrives while
        // an earlier session is still running picks up work only after
        // it. A tiny population over a large batch maximizes re-arrival
        // pressure.
        let hits: Vec<Hit> = (0..40)
            .map(|i| Hit::pairs(vec![Pair::of(2 * i, 2 * i + 1)]))
            .collect();
        let gold = GoldStandard::new();
        let pop = WorkerPopulation::generate(
            &PopulationConfig {
                size: 5,
                ..Default::default()
            },
            23,
        );
        let out = simulate(&hits, &gold, &pop, &CrowdConfig::default()).unwrap();
        let mut spans: HashMap<WorkerId, Vec<(f64, f64)>> = HashMap::new();
        for a in &out.assignments {
            spans
                .entry(a.worker)
                .or_default()
                .push((a.accepted_at_min, a.completed_at_min));
        }
        for (worker, mut intervals) in spans {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "worker {worker:?} accepted at {} before finishing at {}",
                    w[1].0,
                    w[0].1
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (hits, gold, pop) = small_world();
        let cfg = CrowdConfig::default();
        let a = simulate(&hits, &gold, &pop, &cfg).unwrap();
        let b = simulate(&hits, &gold, &pop, &cfg).unwrap();
        assert_eq!(a.assignments.len(), b.assignments.len());
        assert_eq!(a.elapsed_minutes, b.elapsed_minutes);
        assert_eq!(a.cost_dollars, b.cost_dollars);
    }

    #[test]
    fn cost_matches_paper_formula() {
        // §7.3: 112 HITs × 3 assignments × $0.025 = $8.40.
        let hits: Vec<Hit> = (0..112)
            .map(|i| Hit::pairs(vec![Pair::of(2 * i, 2 * i + 1)]))
            .collect();
        let gold = GoldStandard::new();
        let pop = WorkerPopulation::generate(
            &PopulationConfig {
                size: 300,
                ..Default::default()
            },
            1,
        );
        let out = simulate(&hits, &gold, &pop, &CrowdConfig::default()).unwrap();
        assert!((out.cost_dollars - 8.40).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let (_, gold, pop) = small_world();
        let out = simulate(&[], &gold, &pop, &CrowdConfig::default()).unwrap();
        assert!(out.assignments.is_empty());
        assert_eq!(out.cost_dollars, 0.0);
    }

    #[test]
    fn rejects_insufficient_population() {
        let (hits, gold, _) = small_world();
        let tiny = WorkerPopulation::generate(
            &PopulationConfig {
                size: 2,
                ..Default::default()
            },
            0,
        );
        let err = simulate(&hits, &gold, &tiny, &CrowdConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn qualification_test_filters_and_slows() {
        let (hits, gold, pop) = small_world();
        let no_qt = simulate(&hits, &gold, &pop, &CrowdConfig::default()).unwrap();
        let with_qt = simulate(
            &hits,
            &gold,
            &pop,
            &CrowdConfig {
                qualification: Some(QualificationConfig::default()),
                ..Default::default()
            },
        )
        .unwrap();
        // QT adds friction: the same batch takes longer end-to-end.
        assert!(with_qt.elapsed_minutes > no_qt.elapsed_minutes);
    }

    #[test]
    fn pair_hits_attract_more_than_unfamiliar_clusters() {
        // The acceptance model behind Figure 14(a): a 16-pair HIT is
        // accepted more readily than a 10-record cluster HIT by an
        // average worker, but a 28-pair HIT is not (Figure 14(b)).
        let worker = WorkerProfile {
            id: WorkerId(0),
            kind: crate::worker::WorkerKind::Diligent,
            sensitivity: 0.9,
            specificity: 0.9,
            seconds_per_comparison: 2.0,
            cluster_affinity: 0.45,
        };
        let cfg = CrowdConfig::default();
        let p16 = Hit::pairs((0..16).map(|i| Pair::of(2 * i, 2 * i + 1)).collect());
        let p28 = Hit::pairs((0..28).map(|i| Pair::of(2 * i, 2 * i + 1)).collect());
        let c10 = Hit::cluster((0..10).map(RecordId));
        let a16 = acceptance_probability(&worker, &p16, &cfg);
        let a28 = acceptance_probability(&worker, &p28, &cfg);
        let ac10 = acceptance_probability(&worker, &c10, &cfg);
        assert!(a16 > ac10, "P16 {a16} should attract more than C10 {ac10}");
        assert!(a28 < ac10, "P28 {a28} should attract less than C10 {ac10}");
    }

    #[test]
    fn browsing_spreads_acceptances_across_large_batches() {
        // Regression for the sampled browse: with far more open HITs
        // than `browse_limit`, early acceptances must be spread uniformly
        // over the whole batch, not biased toward any prefix. The mean
        // accepted hit-index of the first third of assignments should sit
        // near the batch midpoint (59.5 for 120 HITs); a positionally
        // biased browse would push it far off-center.
        let hits: Vec<Hit> = (0..120)
            .map(|i| Hit::pairs(vec![Pair::of(2 * i, 2 * i + 1)]))
            .collect();
        let gold = GoldStandard::new();
        let pop = WorkerPopulation::generate(
            &PopulationConfig {
                size: 400,
                ..Default::default()
            },
            3,
        );
        let cfg = CrowdConfig {
            browse_limit: 10,
            ..CrowdConfig::default()
        };
        let out = simulate(&hits, &gold, &pop, &cfg).unwrap();
        let third = out.assignments.len() / 3;
        let mean_idx: f64 = out.assignments[..third]
            .iter()
            .map(|a| a.hit_index as f64)
            .sum::<f64>()
            / third as f64;
        assert!(
            (40.0..=80.0).contains(&mean_idx),
            "early acceptances biased: mean index {mean_idx:.1}, expected near 59.5"
        );
        // And the batch still completes exactly.
        assert_eq!(out.assignments.len(), hits.len() * cfg.assignments_per_hit);
    }

    #[test]
    fn deadline_carries_in_flight_work_instead_of_erroring() {
        // A deadline short enough to interrupt the batch must split the
        // work into completed + in-flight, never error — and everything
        // accepted must land in exactly one of the two.
        let hits: Vec<Hit> = (0..30)
            .map(|i| Hit::pairs(vec![Pair::of(2 * i, 2 * i + 1)]))
            .collect();
        let gold = GoldStandard::new();
        let pop = WorkerPopulation::generate(
            &PopulationConfig {
                size: 20,
                ..Default::default()
            },
            5,
        );
        let cfg = CrowdConfig {
            session_deadline_min: Some(3.0),
            ..CrowdConfig::default()
        };
        let out = simulate(&hits, &gold, &pop, &cfg).unwrap();
        assert!(
            out.assignments.len() + out.in_flight.len() < 30 * cfg.assignments_per_hit,
            "the deadline must actually interrupt this batch"
        );
        for a in &out.assignments {
            assert!(a.completed_at_min <= 3.0);
        }
        for a in &out.in_flight {
            assert!(a.accepted_at_min <= 3.0 && a.completed_at_min > 3.0);
        }
        // Cost covers only completed work; in-flight is paid on delivery.
        assert!(
            (out.cost_dollars - out.assignments.len() as f64 * 0.025).abs() < 1e-12,
            "{}",
            out.cost_dollars
        );
    }

    #[test]
    fn session_state_accumulates_and_wakes_sleepers() {
        let hits: Vec<Hit> = (0..20)
            .map(|i| Hit::pairs(vec![Pair::of(2 * i, 2 * i + 1)]))
            .collect();
        // Every pair is a true match; an awake sleeper answers NO.
        let gold = GoldStandard::from_pairs((0..20).map(|i| Pair::of(2 * i, 2 * i + 1)));
        let sleeper = WorkerProfile {
            id: WorkerId(0),
            kind: crate::worker::WorkerKind::Sleeper { after: 10 },
            sensitivity: 1.0,
            specificity: 1.0,
            seconds_per_comparison: 1.0,
            cluster_affinity: 0.5,
        };
        let diligent = WorkerProfile {
            id: WorkerId(1),
            kind: crate::worker::WorkerKind::Diligent,
            ..sleeper.clone()
        };
        let pop = WorkerPopulation::from_workers(vec![
            sleeper,
            diligent.clone(),
            WorkerProfile {
                id: WorkerId(2),
                ..diligent
            },
        ]);
        let mut state = SessionState::new();
        let cfg = CrowdConfig::default();
        let first = simulate_session(&hits, &gold, &pop, &cfg, &mut state).unwrap();
        assert_eq!(
            state.total_completed(),
            first.assignments.len() as u64,
            "history records every completed assignment"
        );
        // Run more sessions against the same history: once the sleeper
        // crosses 10 completions, its answers flip to NO on matches.
        let mut woke_answers = Vec::new();
        for round in 1..6 {
            let cfg = CrowdConfig {
                seed: round,
                ..cfg.clone()
            };
            let out = simulate_session(&hits, &gold, &pop, &cfg, &mut state).unwrap();
            for a in &out.assignments {
                if a.worker == WorkerId(0) && state.completed_by(WorkerId(0)) > 10 {
                    woke_answers.extend(a.answer.verdicts.iter().map(|&(_, v)| v));
                }
            }
        }
        assert!(
            state.completed_by(WorkerId(0)) > 10,
            "sleeper must get past its onset in five rounds"
        );
        assert!(
            woke_answers.iter().filter(|&&v| !v).count() > woke_answers.len() / 2,
            "an awake sleeper answers mostly NO on true matches"
        );
    }

    #[test]
    fn median_and_triples_helpers() {
        let (hits, gold, pop) = small_world();
        let out = simulate(&hits, &gold, &pop, &CrowdConfig::default()).unwrap();
        assert!(out.median_assignment_secs() > 0.0);
        let triples = out.labeled_triples();
        // Each pair HIT contributes its pairs; the 3-record cluster HIT
        // contributes 3 derived pairs; ×3 assignments.
        assert_eq!(triples.len(), (2 + 3 + 1) * 3);
    }
}

//! # crowder-crowd
//!
//! A deterministic, seeded crowd-platform simulator standing in for
//! Amazon Mechanical Turk (see DESIGN.md §2 for the substitution
//! argument). The paper's crowd findings are statistical statements about
//! worker error rates, per-assignment latency, end-to-end completion time
//! and cost; the simulator exposes each as an explicit parameter:
//!
//! * [`worker`] — per-worker sensitivity/specificity (the Dawid–Skene
//!   generative model), spammer archetypes, working speed and
//!   interface-familiarity coefficients;
//! * [`population`] — seeded sampling of worker pools;
//! * [`qualification`] — the 3-pair qualification test of §7.1, which
//!   filters spammers *and* (per the paper's observation) makes passing
//!   workers read instructions more carefully;
//! * [`answer`] — answer generation: independent noisy verdicts for
//!   pair-based HITs; the §6 sequential entity-identification procedure
//!   (with noisy comparisons that still yield a consistent partition)
//!   for cluster-based HITs, which also yields the comparison counts the
//!   latency model consumes;
//! * [`platform`] — an event-driven marketplace: Poisson worker
//!   arrivals, per-HIT-shape acceptance probabilities (pair HITs attract
//!   more workers — the paper's explanation of Figure 14(a)), AMT's
//!   distinct-worker guarantee per HIT, payment accounting
//!   ($0.02 + $0.005 per assignment).
//!
//! Everything is reproducible: all stochastic choices flow from a single
//! `u64` seed per run.

pub mod answer;
pub mod platform;
pub mod population;
pub mod qualification;
pub mod sampler;
pub mod worker;

pub use answer::{answer_hit, HitAnswer};
pub use platform::{
    labeled_triples_of, simulate, simulate_session, AssignmentRecord, CrowdConfig, SessionState,
    SimOutcome,
};
pub use population::{PopulationConfig, WorkerPopulation};
pub use qualification::QualificationConfig;
pub use sampler::OpenHitSampler;
pub use worker::{WorkerId, WorkerKind, WorkerProfile};

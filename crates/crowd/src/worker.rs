//! Worker profiles.
//!
//! Workers follow the Dawid–Skene generative model the paper's EM
//! aggregation assumes: a worker answers a true-match pair YES with
//! probability `sensitivity` and a true-non-match pair NO with
//! probability `specificity`. Spammers (the paper: *"we found that some
//! workers may do our HITs maliciously"*) are modeled as archetypes with
//! uninformative or constant response patterns.

/// Identifier of a simulated crowd worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Behavioural archetype of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerKind {
    /// A genuine worker whose errors follow sensitivity/specificity.
    Diligent,
    /// Answers uniformly at random (sensitivity = specificity = 0.5).
    RandomSpammer,
    /// Answers YES to everything (sensitivity 1, specificity 0).
    AlwaysYesSpammer,
    /// Answers NO to everything (sensitivity 0, specificity 1).
    AlwaysNoSpammer,
    /// Inverts the truth on every answer. The *base* profile looks
    /// diligent (so qualification tests are passed), but every verdict
    /// is produced with the confusion matrix mirrored.
    SystematicLiar,
    /// Alternates between diligent and inverted answers by assignment
    /// parity — time-correlated noise that averages to a random
    /// clicker but is bursty round-to-round.
    RandomFlipper,
    /// Behaves diligently for the first `after` assignments (building
    /// reputation, passing any qualification), then turns into a
    /// systematic liar.
    Sleeper {
        /// Completed assignments before the worker turns.
        after: u32,
    },
}

impl WorkerKind {
    /// Short archetype name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkerKind::Diligent => "diligent",
            WorkerKind::RandomSpammer => "random-spammer",
            WorkerKind::AlwaysYesSpammer => "always-yes",
            WorkerKind::AlwaysNoSpammer => "always-no",
            WorkerKind::SystematicLiar => "systematic-liar",
            WorkerKind::RandomFlipper => "random-flipper",
            WorkerKind::Sleeper { .. } => "sleeper",
        }
    }

    /// Archetypes that deliberately answer against the truth (at least
    /// some of the time). Spammers are noise; these are adversaries.
    pub fn is_adversarial(self) -> bool {
        matches!(
            self,
            WorkerKind::SystematicLiar | WorkerKind::RandomFlipper | WorkerKind::Sleeper { .. }
        )
    }
}

/// A simulated crowd worker.
#[derive(Debug, Clone)]
pub struct WorkerProfile {
    /// Stable id.
    pub id: WorkerId,
    /// Archetype.
    pub kind: WorkerKind,
    /// P(answer YES | records truly match).
    pub sensitivity: f64,
    /// P(answer NO | records truly differ).
    pub specificity: f64,
    /// Seconds per record comparison (the §6 unit of work).
    pub seconds_per_comparison: f64,
    /// Probability of accepting a *cluster-based* HIT when browsing; the
    /// paper observed the unfamiliar cluster interface deterred workers
    /// (§7.4). Pair-HIT acceptance is handled by the effort model in
    /// [`crate::platform`].
    pub cluster_affinity: f64,
}

impl WorkerProfile {
    /// Effective P(YES) for a pair whose ground truth is `is_match`.
    pub fn p_yes(&self, is_match: bool) -> f64 {
        if is_match {
            self.sensitivity
        } else {
            1.0 - self.specificity
        }
    }

    /// Human-readable archetype name.
    pub fn kind_name(&self) -> &'static str {
        self.kind.name()
    }

    /// The profile this worker *actually answers with* after having
    /// completed `completed` assignments. Honest archetypes are
    /// experience-invariant; adversaries are where the platform's
    /// per-worker completion counter matters:
    ///
    /// * a [`SystematicLiar`](WorkerKind::SystematicLiar) always
    ///   answers with the mirrored confusion matrix,
    /// * a [`RandomFlipper`](WorkerKind::RandomFlipper) mirrors on
    ///   odd-numbered assignments only,
    /// * a [`Sleeper`](WorkerKind::Sleeper) mirrors once `completed`
    ///   reaches its onset.
    ///
    /// The *base* sensitivity/specificity of all three is sampled like
    /// a diligent worker's, so qualification tests (which administer
    /// the base profile) are passed — gaming the gate is the point of
    /// these archetypes.
    pub fn at_experience(&self, completed: u32) -> WorkerProfile {
        let lie = match self.kind {
            WorkerKind::SystematicLiar => true,
            WorkerKind::RandomFlipper => completed % 2 == 1,
            WorkerKind::Sleeper { after } => completed >= after,
            _ => false,
        };
        if lie {
            WorkerProfile {
                sensitivity: 1.0 - self.sensitivity,
                specificity: 1.0 - self.specificity,
                ..self.clone()
            }
        } else {
            self.clone()
        }
    }

    /// Apply the qualification-test "attention boost": the paper argues
    /// the test makes workers read instructions more carefully, so
    /// passing workers get their error rates shrunk by `boost ∈ [0, 1]`
    /// (0 = no change, 1 = perfect). Spammer archetypes are unaffected —
    /// carelessness is not their problem.
    pub fn with_attention_boost(mut self, boost: f64) -> Self {
        if matches!(self.kind, WorkerKind::Diligent) {
            self.sensitivity += (1.0 - self.sensitivity) * boost;
            self.specificity += (1.0 - self.specificity) * boost;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diligent() -> WorkerProfile {
        WorkerProfile {
            id: WorkerId(1),
            kind: WorkerKind::Diligent,
            sensitivity: 0.9,
            specificity: 0.8,
            seconds_per_comparison: 3.0,
            cluster_affinity: 0.5,
        }
    }

    #[test]
    fn p_yes_follows_confusion_matrix() {
        let w = diligent();
        assert!((w.p_yes(true) - 0.9).abs() < 1e-12);
        assert!((w.p_yes(false) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn attention_boost_shrinks_errors() {
        let w = diligent().with_attention_boost(0.5);
        assert!((w.sensitivity - 0.95).abs() < 1e-12);
        assert!((w.specificity - 0.9).abs() < 1e-12);
    }

    #[test]
    fn attention_boost_ignores_spammers() {
        let mut w = diligent();
        w.kind = WorkerKind::RandomSpammer;
        w.sensitivity = 0.5;
        w.specificity = 0.5;
        let boosted = w.with_attention_boost(0.9);
        assert_eq!(boosted.sensitivity, 0.5);
        assert_eq!(boosted.specificity, 0.5);
    }

    #[test]
    fn liar_always_mirrors() {
        let mut w = diligent();
        w.kind = WorkerKind::SystematicLiar;
        for completed in [0, 1, 7, 100] {
            let e = w.at_experience(completed);
            assert!((e.sensitivity - 0.1).abs() < 1e-12);
            assert!((e.specificity - 0.2).abs() < 1e-12);
        }
        assert!(w.kind.is_adversarial());
    }

    #[test]
    fn flipper_alternates_by_parity() {
        let mut w = diligent();
        w.kind = WorkerKind::RandomFlipper;
        assert_eq!(w.at_experience(0).sensitivity, 0.9);
        assert!((w.at_experience(1).sensitivity - 0.1).abs() < 1e-12);
        assert_eq!(w.at_experience(2).sensitivity, 0.9);
    }

    #[test]
    fn sleeper_turns_at_onset() {
        let mut w = diligent();
        w.kind = WorkerKind::Sleeper { after: 3 };
        assert_eq!(w.at_experience(0).sensitivity, 0.9);
        assert_eq!(w.at_experience(2).sensitivity, 0.9);
        assert!((w.at_experience(3).sensitivity - 0.1).abs() < 1e-12);
        assert!((w.at_experience(9).specificity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn honest_kinds_ignore_experience() {
        for kind in [
            WorkerKind::Diligent,
            WorkerKind::RandomSpammer,
            WorkerKind::AlwaysYesSpammer,
            WorkerKind::AlwaysNoSpammer,
        ] {
            let mut w = diligent();
            w.kind = kind;
            assert_eq!(w.at_experience(50).sensitivity, w.sensitivity);
            assert!(!kind.is_adversarial());
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(diligent().kind_name(), "diligent");
        assert_eq!(
            WorkerProfile {
                kind: WorkerKind::AlwaysYesSpammer,
                ..diligent()
            }
            .kind_name(),
            "always-yes"
        );
    }
}

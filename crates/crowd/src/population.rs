//! Seeded sampling of worker populations.

use crate::worker::{WorkerId, WorkerKind, WorkerProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution parameters for a worker pool.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of distinct workers available.
    pub size: usize,
    /// Mean sensitivity of diligent workers (truncated-normal).
    pub mean_sensitivity: f64,
    /// Mean specificity of diligent workers.
    pub mean_specificity: f64,
    /// Standard deviation of both accuracy parameters.
    pub accuracy_stddev: f64,
    /// Fraction of spammers (split evenly between random, always-yes and
    /// always-no archetypes).
    pub spammer_fraction: f64,
    /// Fraction of non-spammers who are systematic liars (every answer
    /// mirrors the truth). Their *base* accuracy is sampled like a
    /// diligent worker's — the deception is behavioural, not
    /// parametric, so qualification tests are gamed.
    pub liar_fraction: f64,
    /// Fraction of non-spammers who flip between diligent and mirrored
    /// answers by assignment parity.
    pub flipper_fraction: f64,
    /// Fraction of non-spammers who answer diligently for
    /// `sleeper_onset` assignments and then turn into liars.
    pub sleeper_fraction: f64,
    /// Completed assignments before a sleeper turns.
    pub sleeper_onset: u32,
    /// Mean seconds per record comparison (log-normal-ish spread).
    pub mean_seconds_per_comparison: f64,
    /// Mean affinity for the unfamiliar cluster interface in `[0, 1]`.
    pub mean_cluster_affinity: f64,
}

impl Default for PopulationConfig {
    /// Defaults calibrated so that majority-vote accuracy and EM recovery
    /// sit in the range the paper's AMT runs exhibit (high but imperfect
    /// precision/recall, noticeably degraded without a qualification
    /// test).
    fn default() -> Self {
        PopulationConfig {
            size: 400,
            mean_sensitivity: 0.93,
            mean_specificity: 0.95,
            accuracy_stddev: 0.05,
            spammer_fraction: 0.12,
            liar_fraction: 0.0,
            flipper_fraction: 0.0,
            sleeper_fraction: 0.0,
            sleeper_onset: 8,
            mean_seconds_per_comparison: 2.5,
            mean_cluster_affinity: 0.45,
        }
    }
}

/// A sampled pool of workers.
#[derive(Debug, Clone)]
pub struct WorkerPopulation {
    workers: Vec<WorkerProfile>,
}

impl WorkerPopulation {
    /// Build a pool from explicit profiles (ids are reassigned densely —
    /// the platform uses them as indices).
    pub fn from_workers(mut workers: Vec<WorkerProfile>) -> Self {
        for (i, w) in workers.iter_mut().enumerate() {
            w.id = WorkerId(i as u32);
        }
        WorkerPopulation { workers }
    }

    /// Sample a pool from `config` with a fixed `seed`.
    pub fn generate(config: &PopulationConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workers = Vec::with_capacity(config.size);
        for i in 0..config.size {
            let spam_roll: f64 = rng.random();
            let adversary_total =
                config.liar_fraction + config.flipper_fraction + config.sleeper_fraction;
            let kind = if spam_roll < config.spammer_fraction {
                match (spam_roll / config.spammer_fraction * 3.0) as usize {
                    0 => WorkerKind::RandomSpammer,
                    1 => WorkerKind::AlwaysYesSpammer,
                    _ => WorkerKind::AlwaysNoSpammer,
                }
            } else if adversary_total > 0.0 {
                // Only drawn when adversaries are configured, so the
                // default (all-zero) config replays the exact RNG
                // stream of the pre-adversary sampler.
                let adv_roll: f64 = rng.random();
                if adv_roll < config.liar_fraction {
                    WorkerKind::SystematicLiar
                } else if adv_roll < config.liar_fraction + config.flipper_fraction {
                    WorkerKind::RandomFlipper
                } else if adv_roll < adversary_total {
                    WorkerKind::Sleeper {
                        after: config.sleeper_onset,
                    }
                } else {
                    WorkerKind::Diligent
                }
            } else {
                WorkerKind::Diligent
            };
            let (sensitivity, specificity) = match kind {
                // Adversaries masquerade as diligent: their base
                // accuracy is sampled from the same distribution (the
                // mirroring happens at answer time — see
                // `WorkerProfile::at_experience`).
                WorkerKind::Diligent
                | WorkerKind::SystematicLiar
                | WorkerKind::RandomFlipper
                | WorkerKind::Sleeper { .. } => (
                    truncated_normal(
                        &mut rng,
                        config.mean_sensitivity,
                        config.accuracy_stddev,
                        0.55,
                        0.999,
                    ),
                    truncated_normal(
                        &mut rng,
                        config.mean_specificity,
                        config.accuracy_stddev,
                        0.55,
                        0.999,
                    ),
                ),
                WorkerKind::RandomSpammer => (0.5, 0.5),
                WorkerKind::AlwaysYesSpammer => (1.0, 0.0),
                WorkerKind::AlwaysNoSpammer => (0.0, 1.0),
            };
            let seconds = truncated_normal(
                &mut rng,
                config.mean_seconds_per_comparison,
                config.mean_seconds_per_comparison * 0.4,
                0.5,
                20.0,
            );
            let affinity = truncated_normal(&mut rng, config.mean_cluster_affinity, 0.2, 0.02, 1.0);
            workers.push(WorkerProfile {
                id: WorkerId(i as u32),
                kind,
                sensitivity,
                specificity,
                seconds_per_comparison: seconds,
                cluster_affinity: affinity,
            });
        }
        WorkerPopulation { workers }
    }

    /// All workers.
    #[inline]
    pub fn workers(&self) -> &[WorkerProfile] {
        &self.workers
    }

    /// Pool size.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True iff the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Look up a worker by id.
    pub fn worker(&self, id: WorkerId) -> &WorkerProfile {
        &self.workers[id.0 as usize]
    }
}

/// Box–Muller normal sample truncated (by clamping) to `[lo, hi]`.
fn truncated_normal(rng: &mut StdRng, mean: f64, stddev: f64, lo: f64, hi: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mean + stddev * z).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = PopulationConfig::default();
        let a = WorkerPopulation::generate(&cfg, 9);
        let b = WorkerPopulation::generate(&cfg, 9);
        assert_eq!(a.len(), b.len());
        for (wa, wb) in a.workers().iter().zip(b.workers()) {
            assert_eq!(wa.id, wb.id);
            assert_eq!(wa.kind, wb.kind);
            assert_eq!(wa.sensitivity, wb.sensitivity);
        }
    }

    #[test]
    fn spammer_fraction_roughly_respected() {
        let cfg = PopulationConfig {
            size: 2000,
            ..Default::default()
        };
        let pop = WorkerPopulation::generate(&cfg, 3);
        let spammers = pop
            .workers()
            .iter()
            .filter(|w| !matches!(w.kind, WorkerKind::Diligent))
            .count();
        let frac = spammers as f64 / pop.len() as f64;
        assert!(
            (frac - cfg.spammer_fraction).abs() < 0.03,
            "fraction {frac}"
        );
    }

    #[test]
    fn diligent_workers_are_competent() {
        let pop = WorkerPopulation::generate(&PopulationConfig::default(), 1);
        for w in pop.workers() {
            if matches!(w.kind, WorkerKind::Diligent) {
                assert!(w.sensitivity >= 0.55 && w.sensitivity <= 0.999);
                assert!(w.specificity >= 0.55 && w.specificity <= 0.999);
            }
            assert!(w.seconds_per_comparison >= 0.5);
            assert!((0.0..=1.0).contains(&w.cluster_affinity));
        }
    }

    #[test]
    fn zero_adversary_config_replays_legacy_stream() {
        // The adversary fractions must be RNG-transparent when zero:
        // every downstream deterministic test depends on the default
        // population being byte-identical to the pre-adversary one.
        let a = WorkerPopulation::generate(&PopulationConfig::default(), 42);
        for w in a.workers() {
            assert!(!w.kind.is_adversarial());
        }
    }

    #[test]
    fn adversary_fractions_roughly_respected() {
        let cfg = PopulationConfig {
            size: 3000,
            liar_fraction: 0.1,
            flipper_fraction: 0.1,
            sleeper_fraction: 0.1,
            ..Default::default()
        };
        let pop = WorkerPopulation::generate(&cfg, 7);
        let count = |pred: fn(&WorkerKind) -> bool| {
            pop.workers().iter().filter(|w| pred(&w.kind)).count() as f64 / pop.len() as f64
        };
        let liars = count(|k| matches!(k, WorkerKind::SystematicLiar));
        let flippers = count(|k| matches!(k, WorkerKind::RandomFlipper));
        let sleepers = count(|k| matches!(k, WorkerKind::Sleeper { .. }));
        for (name, frac) in [
            ("liar", liars),
            ("flipper", flippers),
            ("sleeper", sleepers),
        ] {
            assert!((frac - 0.088).abs() < 0.03, "{name} fraction {frac}");
        }
        // Adversaries still look diligent parametrically.
        for w in pop.workers() {
            if w.kind.is_adversarial() {
                assert!(w.sensitivity >= 0.55, "{:?}", w.kind);
                assert!(w.specificity >= 0.55);
            }
        }
    }

    #[test]
    fn zero_sized_pool() {
        let cfg = PopulationConfig {
            size: 0,
            ..Default::default()
        };
        let pop = WorkerPopulation::generate(&cfg, 0);
        assert!(pop.is_empty());
    }

    #[test]
    fn truncation_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = truncated_normal(&mut rng, 0.9, 0.3, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

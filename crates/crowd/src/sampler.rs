//! Fenwick-indexed uniform sampling of open HITs.
//!
//! A browsing session must show a worker `browse_limit` open HITs,
//! uniformly at random and in uniformly random order. The previous
//! implementations scanned the whole open list per session — first a
//! clone-and-shuffle, then a reservoir sample, both `O(open)`. On a
//! large batch almost all of that work inspects HITs the session never
//! sees.
//!
//! [`OpenHitSampler`] keeps a Fenwick (binary indexed) tree of 0/1
//! weights over the HIT slots. Drawing one open HIT is a uniform draw
//! in `[0, open)` followed by a prefix-sum descent — `O(log n)` — and a
//! session of `k` draws *without replacement* temporarily clears the
//! drawn slots and restores them afterwards, for `O(k log n)` total.
//! Sequential without-replacement draws are distributed exactly like
//! "shuffle the open list, take the first `k`": every subset of size
//! `k` is equally likely, in uniformly random order (the regression
//! tests pin both properties).
//!
//! Completed HITs are cleared permanently ([`OpenHitSampler::close`]),
//! replacing the periodic `open.retain(..)` sweep of the arrival loop.

use rand::rngs::StdRng;
use rand::Rng;

/// A Fenwick tree of 0/1 weights over HIT slots, supporting `O(log n)`
/// uniform draws over the currently-open slots.
#[derive(Debug, Clone)]
pub struct OpenHitSampler {
    /// 1-based Fenwick partial sums.
    tree: Vec<u32>,
    /// Current weight per slot (0 = closed / temporarily drawn).
    weight: Vec<u8>,
    open: u32,
}

impl OpenHitSampler {
    /// A sampler over `n` slots, all open. Built in O(n): for an
    /// all-ones weight array, node `i` of a Fenwick tree covers exactly
    /// `lowbit(i)` leaves.
    pub fn new(n: usize) -> Self {
        let mut tree = vec![0u32; n + 1];
        for (i, node) in tree.iter_mut().enumerate().skip(1) {
            *node = (i & i.wrapping_neg()) as u32;
        }
        OpenHitSampler {
            tree,
            weight: vec![1; n],
            open: n as u32,
        }
    }

    /// Number of open slots.
    #[inline]
    pub fn open_count(&self) -> usize {
        self.open as usize
    }

    fn add(&mut self, slot: usize, delta: i32) {
        let mut i = slot + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Close a slot for good (its HIT needs no more assignments). A
    /// no-op if already closed.
    pub fn close(&mut self, slot: usize) {
        if self.weight[slot] == 1 {
            self.weight[slot] = 0;
            self.open -= 1;
            self.add(slot, -1);
        }
    }

    /// Re-open a slot. A no-op if already open.
    fn reopen(&mut self, slot: usize) {
        if self.weight[slot] == 0 {
            self.weight[slot] = 1;
            self.open += 1;
            self.add(slot, 1);
        }
    }

    /// The slot holding the `target`-th open unit (0-based): a Fenwick
    /// prefix-sum descent.
    fn select(&self, mut target: u32) -> usize {
        debug_assert!(target < self.open);
        let mut pos = 0usize;
        // Highest power of two ≤ tree length.
        let mut step = (self.tree.len()).next_power_of_two();
        if step > self.tree.len() {
            step >>= 1;
        }
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos // pos is the count of slots strictly before the answer
    }

    /// Draw at most `k` distinct open slots, uniformly without
    /// replacement, in uniformly random order. Costs `O(k log n)`; the
    /// open set is unchanged afterwards.
    pub fn sample(&mut self, k: usize, rng: &mut StdRng) -> Vec<usize> {
        let take = k.min(self.open as usize);
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let target = rng.random_range(0..self.open);
            let slot = self.select(target);
            out.push(slot);
            // Temporarily remove so the next draw excludes it.
            self.weight[slot] = 0;
            self.open -= 1;
            self.add(slot, -1);
        }
        for &slot in &out {
            self.reopen(slot);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampler_is_uniform() {
        // Every open slot must be selected with probability k/n. 3000
        // seeded draws of 4 from 12 give each slot an expected 1000
        // selections; the binomial standard deviation is ~26, so
        // [850, 1150] is a > 5-sigma acceptance band — deterministic,
        // not flaky.
        let mut counts = [0usize; 12];
        for seed in 0..3000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sampler = OpenHitSampler::new(12);
            for v in sampler.sample(4, &mut rng) {
                counts[v] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (850..=1150).contains(&c),
                "slot {i} selected {c} times, expected ~1000: {counts:?}"
            );
        }
    }

    #[test]
    fn sample_order_is_uniform_too() {
        // The *first* drawn slot must also be uniform — the browse order
        // matters because sessions stop early at their budget. Same
        // 5-sigma reasoning: 3000 draws over 12 slots, expected 250
        // firsts each, sd ~15.1, band [160, 340].
        let mut firsts = [0usize; 12];
        for seed in 0..3000u64 {
            let mut rng = StdRng::seed_from_u64(seed + 50_000);
            let mut sampler = OpenHitSampler::new(12);
            firsts[sampler.sample(4, &mut rng)[0]] += 1;
        }
        for (i, &c) in firsts.iter().enumerate() {
            assert!(
                (160..=340).contains(&c),
                "slot {i} drawn first {c} times, expected ~250: {firsts:?}"
            );
        }
    }

    #[test]
    fn sample_is_without_replacement_and_restores() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = OpenHitSampler::new(20);
        for _ in 0..50 {
            let mut s = sampler.sample(8, &mut rng);
            assert_eq!(sampler.open_count(), 20, "weights restored");
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8, "distinct slots");
        }
    }

    #[test]
    fn short_input_returns_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sampler = OpenHitSampler::new(5);
        let mut sample = sampler.sample(40, &mut rng);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
        assert!(sampler.sample(0, &mut rng).is_empty());
        assert!(OpenHitSampler::new(0).sample(3, &mut rng).is_empty());
    }

    #[test]
    fn closed_slots_never_appear() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = OpenHitSampler::new(10);
        for slot in [2usize, 5, 7] {
            sampler.close(slot);
            sampler.close(slot); // idempotent
        }
        assert_eq!(sampler.open_count(), 7);
        for _ in 0..200 {
            for v in sampler.sample(4, &mut rng) {
                assert!(![2, 5, 7].contains(&v), "closed slot {v} sampled");
            }
        }
    }

    #[test]
    fn closing_everything_empties_the_sampler() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampler = OpenHitSampler::new(3);
        for slot in 0..3 {
            sampler.close(slot);
        }
        assert_eq!(sampler.open_count(), 0);
        assert!(sampler.sample(2, &mut rng).is_empty());
    }
}

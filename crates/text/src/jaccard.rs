//! Jaccard set similarity — the paper's machine-pass likelihood function.

use crate::tokenize::{tokenize, TokenSet};

/// Jaccard similarity of two token sets: `|A ∩ B| / |A ∪ B|`.
///
/// Two empty sets have similarity 0 by convention (they carry no evidence
/// of referring to the same entity).
///
/// ```
/// use crowder_text::{jaccard, tokenize};
/// let r1 = tokenize("iPad Two 16GB WiFi White");
/// let r2 = tokenize("iPad 2nd generation 16GB WiFi White");
/// // Paper §2.1.1: J(r1, r2) = 4/7 ≈ 0.57.
/// assert!((jaccard(&r1, &r2) - 4.0 / 7.0).abs() < 1e-12);
/// ```
pub fn jaccard(a: &TokenSet, b: &TokenSet) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Convenience wrapper: tokenize both strings then compute [`jaccard`].
pub fn jaccard_strs(a: &str, b: &str) -> f64 {
    jaccard(&tokenize(a), &tokenize(b))
}

/// Intersection size of two sorted, deduplicated id slices (linear
/// merge). The integer counterpart of
/// [`TokenSet::intersection_size`](crate::tokenize::TokenSet::intersection_size),
/// used by the interned similarity-join hot path.
pub fn intersection_size_ids(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        count += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

/// Jaccard similarity of two sorted, deduplicated id slices — identical
/// to [`jaccard`] over the corresponding token sets, but the inner loop
/// compares `u32`s instead of `String`s.
///
/// Two empty slices have similarity 0, matching the [`jaccard`]
/// convention.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    let inter = intersection_size_ids(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        let t = tokenize("a b c");
        assert_eq!(jaccard(&t, &t), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(jaccard_strs("a b", "c d"), 0.0);
    }

    #[test]
    fn empty_sets_convention() {
        assert_eq!(jaccard_strs("", ""), 0.0);
        assert_eq!(jaccard_strs("", "a"), 0.0);
    }

    #[test]
    fn paper_section211_examples() {
        // J(r1, r2) = 0.57 ≥ 0.5 — considered the same entity.
        let j12 = jaccard_strs(
            "iPad Two 16GB WiFi White",
            "iPad 2nd generation 16GB WiFi White",
        );
        assert!((j12 - 4.0 / 7.0).abs() < 1e-12);
        // J(r1, r3) = 0.25 < 0.5 — not a match at threshold 0.5.
        let j13 = jaccard_strs(
            "iPad Two 16GB WiFi White",
            "iPhone 4th generation White 16GB",
        );
        assert!((j13 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_bounded() {
        let a = tokenize("x y z w");
        let b = tokenize("y z q");
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        let v = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn id_jaccard_agrees_with_string_jaccard() {
        use crate::dict::TokenDict;
        let sets = [
            tokenize("iPad Two 16GB WiFi White"),
            tokenize("iPad 2nd generation 16GB WiFi White"),
            tokenize("Apple iPod shuffle 2GB Blue"),
            tokenize(""),
        ];
        let dict = TokenDict::build(&sets);
        let ids: Vec<Vec<u32>> = sets.iter().map(|s| dict.encode(s)).collect();
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                assert_eq!(
                    jaccard(&sets[i], &sets[j]),
                    jaccard_ids(&ids[i], &ids[j]),
                    "({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn id_intersection_edge_cases() {
        assert_eq!(intersection_size_ids(&[], &[]), 0);
        assert_eq!(intersection_size_ids(&[1, 2, 3], &[]), 0);
        assert_eq!(intersection_size_ids(&[1, 3, 5], &[2, 3, 4, 5]), 2);
        assert_eq!(jaccard_ids(&[], &[]), 0.0);
        assert_eq!(jaccard_ids(&[7], &[7]), 1.0);
    }
}

//! Jaccard set similarity — the paper's machine-pass likelihood function.

use crate::tokenize::{tokenize, TokenSet};

/// Jaccard similarity of two token sets: `|A ∩ B| / |A ∪ B|`.
///
/// Two empty sets have similarity 0 by convention (they carry no evidence
/// of referring to the same entity).
///
/// ```
/// use crowder_text::{jaccard, tokenize};
/// let r1 = tokenize("iPad Two 16GB WiFi White");
/// let r2 = tokenize("iPad 2nd generation 16GB WiFi White");
/// // Paper §2.1.1: J(r1, r2) = 4/7 ≈ 0.57.
/// assert!((jaccard(&r1, &r2) - 4.0 / 7.0).abs() < 1e-12);
/// ```
pub fn jaccard(a: &TokenSet, b: &TokenSet) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Convenience wrapper: tokenize both strings then compute [`jaccard`].
pub fn jaccard_strs(a: &str, b: &str) -> f64 {
    jaccard(&tokenize(a), &tokenize(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_similarity_one() {
        let t = tokenize("a b c");
        assert_eq!(jaccard(&t, &t), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_zero() {
        assert_eq!(jaccard_strs("a b", "c d"), 0.0);
    }

    #[test]
    fn empty_sets_convention() {
        assert_eq!(jaccard_strs("", ""), 0.0);
        assert_eq!(jaccard_strs("", "a"), 0.0);
    }

    #[test]
    fn paper_section211_examples() {
        // J(r1, r2) = 0.57 ≥ 0.5 — considered the same entity.
        let j12 = jaccard_strs("iPad Two 16GB WiFi White", "iPad 2nd generation 16GB WiFi White");
        assert!((j12 - 4.0 / 7.0).abs() < 1e-12);
        // J(r1, r3) = 0.25 < 0.5 — not a match at threshold 0.5.
        let j13 = jaccard_strs("iPad Two 16GB WiFi White", "iPhone 4th generation White 16GB");
        assert!((j13 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_bounded() {
        let a = tokenize("x y z w");
        let b = tokenize("y z q");
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        let v = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }
}

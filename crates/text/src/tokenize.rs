//! Tokenization into sorted token sets.
//!
//! §7.1 of the paper: *"We first generated a token set for each record,
//! which consisted of the tokens from all attribute values."* Tokens are
//! whitespace-separated words of the normalized text.

use crowder_types::normalize;

/// A record's token set: sorted, deduplicated tokens.
///
/// Sorted storage makes set intersection a linear merge, which is the hot
/// operation of the all-pairs similarity pass (10⁶ pairs on Product), and
/// lets the prefix-filtering join slice stable prefixes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TokenSet {
    tokens: Vec<String>,
}

impl TokenSet {
    /// Build from any token iterator; sorts and deduplicates.
    pub fn from_tokens<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut tokens: Vec<String> = iter.into_iter().map(Into::into).collect();
        tokens.sort_unstable();
        tokens.dedup();
        TokenSet { tokens }
    }

    /// Number of distinct tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The sorted tokens.
    #[inline]
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// Membership test (binary search).
    pub fn contains(&self, token: &str) -> bool {
        self.tokens
            .binary_search_by(|t| t.as_str().cmp(token))
            .is_ok()
    }

    /// Size of the intersection with `other` (linear merge of the two
    /// sorted lists).
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.tokens, &other.tokens);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Size of the union with `other` (|A| + |B| − |A∩B|).
    pub fn union_size(&self, other: &TokenSet) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }
}

/// Tokenize raw text: normalize per the paper's preprocessing, then split
/// on whitespace into a [`TokenSet`].
///
/// ```
/// use crowder_text::tokenize;
/// let t = tokenize("iPad Two 16GB WiFi White");
/// assert_eq!(t.len(), 5);
/// assert!(t.contains("ipad"));
/// ```
pub fn tokenize(text: &str) -> TokenSet {
    TokenSet::from_tokens(normalize(text).split_whitespace())
}

/// Character q-grams of the normalized text (with `q-1` padding `#`
/// sentinels), used by the q-gram blocking index the paper references in
/// §2.2 footnote 1.
///
/// Returns the *distinct* q-grams, sorted.
pub fn qgrams(text: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q-gram size must be at least 1");
    let norm = normalize(text);
    if norm.is_empty() {
        return Vec::new();
    }
    // One padded buffer; windows are `&str` slices over it, so only the
    // *distinct* grams surviving dedup allocate.
    let mut padded = String::with_capacity(norm.len() + 2 * (q - 1));
    for _ in 0..q - 1 {
        padded.push('#');
    }
    padded.push_str(&norm);
    for _ in 0..q - 1 {
        padded.push('#');
    }
    // Byte offsets of every char boundary (including the end), so a
    // window of q chars is the slice between boundaries i and i + q.
    let bounds: Vec<usize> = padded
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(padded.len()))
        .collect();
    let n_chars = bounds.len() - 1;
    if n_chars < q {
        return Vec::new();
    }
    let mut windows: Vec<&str> = (0..=n_chars - q)
        .map(|i| &padded[bounds[i]..bounds[i + q]])
        .collect();
    windows.sort_unstable();
    windows.dedup();
    windows.into_iter().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_normalizes_sorts_dedups() {
        let t = tokenize("White  iPad WHITE ipad 16GB");
        assert_eq!(t.tokens(), &["16gb", "ipad", "white"]);
    }

    #[test]
    fn paper_example_token_sets() {
        // §2.1.1: r1 = "iPad Two 16GB WiFi White" ∩ r2 = "iPad 2nd
        // generation 16GB WiFi White" share {ipad, 16gb, wifi, white}.
        let r1 = tokenize("iPad Two 16GB WiFi White");
        let r2 = tokenize("iPad 2nd generation 16GB WiFi White");
        assert_eq!(r1.intersection_size(&r2), 4);
        assert_eq!(r1.union_size(&r2), 7);
    }

    #[test]
    fn empty_inputs() {
        let e = tokenize("");
        assert!(e.is_empty());
        assert_eq!(e.intersection_size(&e), 0);
        assert_eq!(e.union_size(&tokenize("a b")), 2);
    }

    #[test]
    fn contains_uses_normalized_tokens() {
        let t = tokenize("Apple iPod-Shuffle");
        assert!(t.contains("apple"));
        assert!(t.contains("ipod"));
        assert!(t.contains("shuffle"));
        assert!(!t.contains("Apple")); // tokens are lowercased
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = tokenize("a b c d");
        let b = tokenize("c d e");
        assert_eq!(a.intersection_size(&b), b.intersection_size(&a));
        assert_eq!(a.union_size(&b), b.union_size(&a));
    }

    #[test]
    fn qgrams_basic() {
        let g = qgrams("ab", 2);
        // padded: #ab# -> {#a, ab, b#}
        assert_eq!(g, vec!["#a".to_string(), "ab".into(), "b#".into()]);
        assert!(qgrams("", 3).is_empty());
    }

    #[test]
    fn qgrams_q1_is_distinct_chars() {
        let g = qgrams("aba", 1);
        assert_eq!(g, vec!["a".to_string(), "b".into()]);
    }
}

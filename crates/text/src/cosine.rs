//! Cosine similarity over token-frequency vectors.
//!
//! The second similarity function of the paper's SVM baseline (§7.3).
//! Records are short, so we build the term-frequency maps on the fly
//! rather than maintaining a corpus-wide vector space.

use crowder_types::normalize;
use std::collections::HashMap;

/// Term-frequency map of the normalized text.
fn term_freqs(text: &str) -> HashMap<String, f64> {
    let mut tf: HashMap<String, f64> = HashMap::new();
    for tok in normalize(text).split_whitespace() {
        *tf.entry(tok.to_string()).or_insert(0.0) += 1.0;
    }
    tf
}

/// Cosine similarity of the token-frequency vectors of two strings:
/// `⟨a, b⟩ / (‖a‖·‖b‖)`, in `[0, 1]`.
///
/// Empty-vs-anything is 0; this matches the "no shared evidence"
/// convention used for Jaccard.
///
/// ```
/// use crowder_text::cosine_similarity;
/// assert!(cosine_similarity("ipad white", "ipad white") > 0.999);
/// assert_eq!(cosine_similarity("ipad", "iphone"), 0.0);
/// ```
pub fn cosine_similarity(a: &str, b: &str) -> f64 {
    let ta = term_freqs(a);
    let tb = term_freqs(b);
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    // Iterate the smaller map for the dot product.
    let (small, large) = if ta.len() <= tb.len() {
        (&ta, &tb)
    } else {
        (&tb, &ta)
    };
    let dot: f64 = small
        .iter()
        .filter_map(|(tok, &fa)| large.get(tok).map(|&fb| fa * fb))
        .sum();
    let na: f64 = ta.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = tb.values().map(|v| v * v).sum::<f64>().sqrt();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_texts_are_one() {
        assert!((cosine_similarity("a b c", "a b c") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_tokens_weigh_more() {
        // "a a b" vs "a": tf_a = (2,1), tf_b = (1,0); cos = 2/√5 ≈ 0.894.
        let s = cosine_similarity("a a b", "a");
        assert!((s - 2.0 / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn disjoint_and_empty() {
        assert_eq!(cosine_similarity("x y", "z w"), 0.0);
        assert_eq!(cosine_similarity("", "anything"), 0.0);
        assert_eq!(cosine_similarity("", ""), 0.0);
    }

    #[test]
    fn normalization_applies() {
        // Punctuation and case differences vanish.
        assert!((cosine_similarity("iPad-2, White!", "ipad 2 white") - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn symmetric_and_bounded(a in "[a-c ]{0,16}", b in "[a-c ]{0,16}") {
            let ab = cosine_similarity(&a, &b);
            let ba = cosine_similarity(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&ab));
        }
    }
}

//! Overlap and Dice coefficients.
//!
//! Not used by the paper's headline pipeline, but standard members of a
//! similarity-join toolbox; the ablation benches swap them in for Jaccard
//! to show the likelihood function is a pluggable component.

use crate::tokenize::TokenSet;

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)`; 0 if either set is
/// empty.
pub fn overlap_coefficient(a: &TokenSet, b: &TokenSet) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    a.intersection_size(b) as f64 / min as f64
}

/// Sørensen–Dice coefficient: `2·|A ∩ B| / (|A| + |B|)`; 0 if both sets
/// are empty.
pub fn dice(a: &TokenSet, b: &TokenSet) -> f64 {
    let total = a.len() + b.len();
    if total == 0 {
        return 0.0;
    }
    2.0 * a.intersection_size(b) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn overlap_of_subset_is_one() {
        let small = tokenize("a b");
        let big = tokenize("a b c d");
        assert_eq!(overlap_coefficient(&small, &big), 1.0);
    }

    #[test]
    fn dice_relates_to_jaccard() {
        // D = 2J / (1 + J) for any pair of sets.
        let a = tokenize("a b c");
        let b = tokenize("b c d e");
        let j = crate::jaccard(&a, &b);
        let d = dice(&a, &b);
        assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12);
    }

    #[test]
    fn empty_conventions() {
        let e = tokenize("");
        let x = tokenize("a");
        assert_eq!(overlap_coefficient(&e, &x), 0.0);
        assert_eq!(dice(&e, &e), 0.0);
    }

    #[test]
    fn bounded_and_symmetric() {
        let a = tokenize("p q r");
        let b = tokenize("q r s");
        for f in [overlap_coefficient, dice] {
            let v = f(&a, &b);
            assert!((0.0..=1.0).contains(&v));
            assert_eq!(f(&a, &b), f(&b, &a));
        }
    }
}

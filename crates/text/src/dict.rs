//! Interned token dictionaries.
//!
//! The similarity-join hot path compares token sets millions of times
//! (1.18M candidate pairs on the paper's Product dataset). Comparing
//! `String`s there wastes the inner merge loop on byte-wise compares and
//! pointer chasing; a [`TokenDict`] interns every distinct corpus token
//! to a dense `u32` id once, so the per-pair work becomes integer slice
//! merging.
//!
//! Ids are assigned in **ascending corpus frequency** order (ties broken
//! lexicographically): id 0 is the rarest token. Sorting a record's id
//! list ascending therefore puts its rarest tokens first — exactly the
//! ordering prefix filtering wants, because a rare leading token makes
//! the record's prefix maximally selective (few other records share it).
//! The dictionary is built once per corpus and amortized across every
//! join call, instead of being re-derived per call.

use crate::tokenize::TokenSet;
use std::collections::HashMap;

/// A corpus-wide token ↔ id interning table, frequency-ordered.
#[derive(Debug, Clone, Default)]
pub struct TokenDict {
    ids: HashMap<String, u32>,
    tokens: Vec<String>,
    freqs: Vec<u32>,
}

impl TokenDict {
    /// Build a dictionary over the distinct tokens of `sets`, assigning
    /// ids by ascending `(corpus frequency, token)`.
    ///
    /// Frequency counts each *set* containing the token once (document
    /// frequency), matching what prefix selectivity cares about.
    pub fn build<'a, I>(sets: I) -> Self
    where
        I: IntoIterator<Item = &'a TokenSet>,
    {
        let mut freq: HashMap<&str, u32> = HashMap::new();
        let mut order: Vec<&str> = Vec::new();
        for set in sets {
            for tok in set.tokens() {
                freq.entry(tok.as_str())
                    .and_modify(|f| *f += 1)
                    .or_insert_with(|| {
                        order.push(tok.as_str());
                        1
                    });
            }
        }
        order.sort_unstable_by(|a, b| freq[a].cmp(&freq[b]).then_with(|| a.cmp(b)));
        let mut ids = HashMap::with_capacity(order.len());
        let mut tokens = Vec::with_capacity(order.len());
        let mut freqs = Vec::with_capacity(order.len());
        for (id, tok) in order.into_iter().enumerate() {
            ids.insert(tok.to_string(), id as u32);
            tokens.push(tok.to_string());
            freqs.push(freq[tok]);
        }
        TokenDict { ids, tokens, freqs }
    }

    /// Id of `token`, if it occurred in the corpus.
    #[inline]
    pub fn id(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token string behind `id`.
    #[inline]
    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Corpus (document) frequency of `id`.
    #[inline]
    pub fn frequency(&self, id: u32) -> u32 {
        self.freqs[id as usize]
    }

    /// Number of distinct tokens interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True iff no token was interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Encode a token set as a sorted (ascending-id, i.e. rarest-first)
    /// id list. Tokens absent from the dictionary are skipped — they
    /// cannot contribute to any within-corpus overlap.
    pub fn encode(&self, set: &TokenSet) -> Vec<u32> {
        let mut ids: Vec<u32> = set.tokens().iter().filter_map(|t| self.id(t)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn corpus() -> Vec<TokenSet> {
        vec![
            tokenize("apple ipod shuffle"),
            tokenize("apple ipod nano"),
            tokenize("apple ipad"),
        ]
    }

    #[test]
    fn ids_are_frequency_ordered_rarest_first() {
        let sets = corpus();
        let dict = TokenDict::build(&sets);
        assert_eq!(dict.len(), 5);
        // apple: 3, ipod: 2, rest: 1 each (lexicographic among ties).
        assert_eq!(dict.token(dict.len() as u32 - 1), "apple");
        assert_eq!(dict.frequency(dict.id("apple").unwrap()), 3);
        assert_eq!(dict.frequency(dict.id("ipod").unwrap()), 2);
        let rare: Vec<&str> = (0..3).map(|i| dict.token(i)).collect();
        assert_eq!(rare, ["ipad", "nano", "shuffle"]);
        for w in [0u32, 1, 2] {
            assert!(
                dict.frequency(w) <= dict.frequency(w + 1),
                "ascending by frequency"
            );
        }
    }

    #[test]
    fn encode_is_sorted_and_skips_unknown() {
        let sets = corpus();
        let dict = TokenDict::build(&sets);
        let ids = dict.encode(&sets[0]);
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let foreign = tokenize("apple zzz-unseen");
        assert_eq!(dict.encode(&foreign), vec![dict.id("apple").unwrap()]);
    }

    #[test]
    fn roundtrip_token_id() {
        let sets = corpus();
        let dict = TokenDict::build(&sets);
        for id in 0..dict.len() as u32 {
            assert_eq!(dict.id(dict.token(id)), Some(id));
        }
        assert_eq!(dict.id("missing"), None);
    }

    #[test]
    fn empty_corpus() {
        let dict = TokenDict::build(std::iter::empty());
        assert!(dict.is_empty());
        assert_eq!(dict.len(), 0);
        assert_eq!(dict.encode(&tokenize("a b")), Vec::<u32>::new());
    }
}

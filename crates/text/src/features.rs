//! Feature-vector extraction for learning-based entity resolution.
//!
//! §2.1.2 of the paper: a pair of records is represented as an
//! `n·m`-dimensional feature vector built from `n` similarity functions
//! applied to `m` attributes. §7.3 instantiates this with edit distance
//! and cosine similarity — on all four Restaurant attributes
//! (8 dimensions) and on the Product `name` attribute (2 dimensions).

use crate::cosine::cosine_similarity;
use crate::jaccard::jaccard_strs;
use crate::levenshtein::edit_similarity;
use crowder_types::{Pair, Record};

/// A named record-attribute similarity function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimilarityFn {
    /// Normalized Levenshtein similarity (see [`edit_similarity`]).
    EditSimilarity,
    /// Token-frequency cosine similarity.
    Cosine,
    /// Token-set Jaccard similarity.
    Jaccard,
}

impl SimilarityFn {
    /// Apply the function to two attribute values.
    pub fn apply(self, a: &str, b: &str) -> f64 {
        match self {
            SimilarityFn::EditSimilarity => edit_similarity(a, b),
            SimilarityFn::Cosine => cosine_similarity(a, b),
            SimilarityFn::Jaccard => jaccard_strs(a, b),
        }
    }

    /// Short display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SimilarityFn::EditSimilarity => "edit",
            SimilarityFn::Cosine => "cosine",
            SimilarityFn::Jaccard => "jaccard",
        }
    }
}

/// Extracts per-pair feature vectors: the cross product of the configured
/// similarity functions and attribute indexes.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    fns: Vec<SimilarityFn>,
    attrs: Vec<usize>,
}

impl FeatureExtractor {
    /// Build an extractor over `fns × attrs`.
    pub fn new(fns: Vec<SimilarityFn>, attrs: Vec<usize>) -> Self {
        FeatureExtractor { fns, attrs }
    }

    /// The paper's §7.3 configuration: edit distance + cosine similarity
    /// over the given attributes.
    pub fn paper_config(attrs: Vec<usize>) -> Self {
        FeatureExtractor::new(
            vec![SimilarityFn::EditSimilarity, SimilarityFn::Cosine],
            attrs,
        )
    }

    /// Dimensionality of produced vectors (`n·m`).
    pub fn dims(&self) -> usize {
        self.fns.len() * self.attrs.len()
    }

    /// Feature vector for a pair of records. Missing attributes
    /// contribute similarity 0.
    pub fn extract(&self, a: &Record, b: &Record) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.dims());
        for &attr in &self.attrs {
            let fa = a.field(attr).unwrap_or("");
            let fb = b.field(attr).unwrap_or("");
            for f in &self.fns {
                v.push(f.apply(fa, fb));
            }
        }
        v
    }

    /// Feature vector for a [`Pair`] resolved against a record slice
    /// (`records[i].id == RecordId(i)`).
    pub fn extract_pair(&self, records: &[Record], pair: &Pair) -> Vec<f64> {
        self.extract(&records[pair.lo().index()], &records[pair.hi().index()])
    }

    /// Human-readable names of the feature dimensions, e.g.
    /// `edit(name)`, `cosine(name)`, ...
    pub fn dimension_names(&self, schema: &[String]) -> Vec<String> {
        let mut names = Vec::with_capacity(self.dims());
        for &attr in &self.attrs {
            let attr_name = schema.get(attr).map(String::as_str).unwrap_or("?");
            for f in &self.fns {
                names.push(format!("{}({})", f.name(), attr_name));
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowder_types::{RecordId, SourceId};

    fn rec(id: u32, fields: &[&str]) -> Record {
        Record::new(
            RecordId(id),
            SourceId(0),
            fields.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn paper_restaurant_config_is_8_dimensional() {
        // 2 similarity functions × 4 attributes.
        let fx = FeatureExtractor::paper_config(vec![0, 1, 2, 3]);
        assert_eq!(fx.dims(), 8);
    }

    #[test]
    fn paper_product_config_is_2_dimensional() {
        let fx = FeatureExtractor::paper_config(vec![0]);
        assert_eq!(fx.dims(), 2);
    }

    #[test]
    fn identical_records_give_all_ones() {
        let fx = FeatureExtractor::paper_config(vec![0, 1]);
        let a = rec(0, &["oceana", "new york"]);
        let v = fx.extract(&a, &a);
        assert_eq!(v.len(), 4);
        for x in v {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_records_give_low_features() {
        let fx = FeatureExtractor::paper_config(vec![0]);
        let a = rec(0, &["aaaa"]);
        let b = rec(1, &["zzzz"]);
        let v = fx.extract(&a, &b);
        assert_eq!(v[0], 0.0); // edit similarity
        assert_eq!(v[1], 0.0); // cosine
    }

    #[test]
    fn missing_attribute_is_zero_not_panic() {
        let fx = FeatureExtractor::paper_config(vec![5]);
        let a = rec(0, &["x"]);
        let b = rec(1, &["x"]);
        let v = fx.extract(&a, &b);
        // Both sides missing → edit_similarity("", "") = 1, cosine = 0.
        assert_eq!(v, vec![1.0, 0.0]);
    }

    #[test]
    fn extract_pair_resolves_ids() {
        let records = vec![rec(0, &["alpha"]), rec(1, &["alpha"])];
        let fx = FeatureExtractor::paper_config(vec![0]);
        let v = fx.extract_pair(&records, &Pair::of(0, 1));
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_names_enumerate_cross_product() {
        let fx = FeatureExtractor::paper_config(vec![0, 1]);
        let names = fx.dimension_names(&["name".into(), "city".into()]);
        assert_eq!(
            names,
            vec!["edit(name)", "cosine(name)", "edit(city)", "cosine(city)"]
        );
    }
}

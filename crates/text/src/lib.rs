//! # crowder-text
//!
//! The string-similarity substrate of the CrowdER reproduction. The paper
//! relies on off-the-shelf similarity machinery; we build it from scratch:
//!
//! * [`tokenize`](mod@tokenize) — whitespace tokenization into sorted, deduplicated
//!   [`TokenSet`]s (the unit of the paper's `simjoin` likelihood), plus
//!   character [`tokenize::qgrams`] for blocking indexes,
//! * [`dict`] — corpus-wide token interning to frequency-ordered `u32`
//!   ids ([`TokenDict`]), the substrate of the similarity-join hot path,
//! * [`jaccard`](mod@jaccard) — Jaccard set similarity (the likelihood function of §2.1.1
//!   and §7.1), over both string sets and interned id slices,
//! * [`levenshtein`] — edit distance and its normalized similarity (one of
//!   the two SVM features, §7.3),
//! * [`cosine`] — token-frequency cosine similarity (the other SVM feature),
//! * [`overlap`] — overlap and Dice coefficients (used by ablations),
//! * [`features`] — per-attribute feature-vector extraction for
//!   learning-based ER (§2.1.2: *n* similarity functions × *m* attributes).

pub mod cosine;
pub mod dict;
pub mod features;
pub mod jaccard;
pub mod levenshtein;
pub mod overlap;
pub mod tokenize;

pub use cosine::cosine_similarity;
pub use dict::TokenDict;
pub use features::{FeatureExtractor, SimilarityFn};
pub use jaccard::{intersection_size_ids, jaccard, jaccard_ids, jaccard_strs};
pub use levenshtein::{edit_distance, edit_similarity};
pub use overlap::{dice, overlap_coefficient};
pub use tokenize::{tokenize, TokenSet};

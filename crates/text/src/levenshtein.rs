//! Levenshtein edit distance and the derived similarity.
//!
//! Edit distance is one of the two similarity functions the paper's SVM
//! baseline uses (§7.3, following Köpcke et al. \[18\]).

/// Levenshtein edit distance between two strings (unit costs for insert,
/// delete, substitute), computed over Unicode scalar values with the
/// classic two-row dynamic program — O(|a|·|b|) time, O(min(|a|,|b|))
/// space.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Keep the shorter string as the DP row to minimize memory.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost) // substitute
                .min(prev[j + 1] + 1) // delete from long
                .min(curr[j] + 1); // insert into long
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Normalized edit similarity: `1 − dist(a, b) / max(|a|, |b|)`.
///
/// Two empty strings are defined to have similarity 1 (they are equal).
/// The result always lies in `[0, 1]`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn unicode_is_per_scalar() {
        assert_eq!(edit_distance("café", "cafe"), 1);
        assert_eq!(edit_distance("日本語", "日本"), 1);
    }

    #[test]
    fn similarity_bounds_and_identity() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("ipad 2", "ipad two");
        assert!((0.0..=1.0).contains(&s));
    }

    proptest! {
        #[test]
        fn symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = edit_distance(&a, &b);
            prop_assert_eq!(d == 0, a == b);
        }

        #[test]
        fn triangle_inequality(
            a in "[a-z]{0,8}",
            b in "[a-z]{0,8}",
            c in "[a-z]{0,8}",
        ) {
            prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = edit_distance(&a, &b);
            let (la, lb) = (a.len(), b.len());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }

        #[test]
        fn similarity_in_unit_interval(a in ".{0,12}", b in ".{0,12}") {
            let s = edit_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}

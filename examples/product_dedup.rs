//! Data-integration scenario: match products across two retailer feeds.
//!
//! ```sh
//! cargo run --release --example product_dedup
//! ```
//!
//! The Product dataset is where machine-only ER breaks down (paper
//! Figure 12(b)): the two sources describe the same items with very
//! different text. This example runs the machine-only `simjoin` ranking
//! and the hybrid workflow side by side and prints interpolated
//! precision at fixed recall levels.

use crowder::prelude::*;

fn main() {
    let dataset = product(&ProductConfig::default());
    println!(
        "== Product integration: {} records across 2 sources, {} matching pairs ==\n",
        dataset.len(),
        dataset.gold.len()
    );

    // Machine-only ranking.
    let machine = simjoin_ranking(&dataset, 0.1);
    let machine_curve = pr_curve(&machine, &dataset.gold);

    // Hybrid at the paper's τ = 0.2, k = 10.
    let crowd = WorkerPopulation::generate(&PopulationConfig::default(), 99);
    let config = HybridConfig {
        likelihood_threshold: 0.2,
        cluster_size: 10,
        ..HybridConfig::default()
    };
    let outcome = run_hybrid(&dataset, &crowd, &config).unwrap();
    let hybrid_curve = pr_curve(&outcome.ranked, &dataset.gold);
    println!(
        "hybrid: {} pairs → {} cluster HITs, ${:.2}, {:.1} h simulated",
        outcome.candidate_pairs.len(),
        outcome.hits.len(),
        outcome.sim.cost_dollars,
        outcome.sim.elapsed_minutes / 60.0
    );

    let mut table = AsciiTable::new(["recall", "simjoin precision", "hybrid precision"]);
    for recall in [0.2, 0.4, 0.6, 0.8, 0.9] {
        table.row([
            format!("{recall:.1}"),
            format!(
                "{:.1}%",
                precision_at_recall(&machine_curve, recall) * 100.0
            ),
            format!("{:.1}%", precision_at_recall(&hybrid_curve, recall) * 100.0),
        ]);
    }
    println!("\n{table}");
    println!("(the hybrid column should dominate — that is the paper's headline result)");
}

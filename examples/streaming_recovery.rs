//! Durable streaming ER surviving a power loss: every mutation the
//! resolver applies — inserts, deletions, field updates, crowd
//! evidence, retractions, re-ranks, HIT flushes — is written to a
//! checksummed write-ahead log with periodic snapshots. This example
//! pulls the plug mid-run with a byte-exact fault injector, recovers
//! from the surviving disk image, replays the lost operation suffix,
//! and proves the recovered state is **bit-for-bit identical** to a
//! run that never crashed — then re-checks the streaming exactness
//! contract (machine pairs ≡ batch join over the live corpus).
//!
//! ```text
//! cargo run --release --example streaming_recovery
//! ```

use crowder::prelude::*;
use std::collections::HashMap;

const NAMES: &[&str] = &[
    "ipad two 16gb wifi white",
    "ipad 2nd generation 16gb wifi white",
    "apple ipad2 16gb wifi white",
    "iphone 4th generation white 16gb",
    "apple iphone 4 16gb white",
    "iphone 4 32gb white",
    "apple iphone 3rd generation black 16gb",
    "apple ipod shuffle 2gb blue",
    "apple ipod shuffle usb cable",
    "sony ericsson z310a black phone",
];

fn stream_config() -> StreamConfig {
    StreamConfig {
        threshold: 0.35,
        cluster_size: 4,
        ..StreamConfig::default()
    }
}

/// A deterministic day of streaming ER: arrivals, a correction, a
/// deletion, crowd evidence (some of it retracted), and periodic HIT
/// regenerations. Expressed as logged operations so the same script
/// can drive both the reference run and the crash run.
fn script() -> Vec<WalOp> {
    let mut ops = Vec::new();
    for name in NAMES {
        ops.push(WalOp::Insert {
            source: 0,
            fields: vec![name.to_string()],
        });
    }
    ops.push(WalOp::Flush);
    ops.push(WalOp::Weights(vec![(1, 1.25), (2, 0.75)]));
    ops.push(WalOp::Evidence {
        pair: Pair::of(0, 1),
        verdict: true,
        weight: 1.25,
    });
    ops.push(WalOp::Evidence {
        pair: Pair::of(3, 4),
        verdict: true,
        weight: 0.75,
    });
    ops.push(WalOp::Evidence {
        pair: Pair::of(3, 5),
        verdict: false,
        weight: 1.0,
    });
    ops.push(WalOp::Update {
        record: RecordId(9),
        fields: vec!["sony ericsson z310a phone black 16gb".to_string()],
    });
    ops.push(WalOp::Remove(RecordId(8)));
    ops.push(WalOp::Retract(Pair::of(3, 5)));
    ops.push(WalOp::EpochRerank);
    ops.push(WalOp::Flush);
    ops
}

fn fresh(dir: impl Dir + Clone) -> DurableResolver<impl Dir + Clone> {
    DurableResolver::create(
        dir,
        "recovery-demo",
        vec!["name".into()],
        PairSpace::SelfJoin,
        stream_config(),
        DurabilityConfig {
            sync_every_ops: 2,
            snapshot_every_ops: 8,
        },
    )
    .expect("fresh durable resolver")
}

fn main() {
    let ops = script();

    // Reference: the same script, uninterrupted, on in-memory storage.
    let mut reference = fresh(MemDir::new());
    for op in &ops {
        reference.apply(op.clone()).expect("reference op applies");
    }
    let expected = reference.digest();

    // Crash run: after `budget` bytes of post-setup IO the disk dies
    // mid-write (a torn frame), and every later IO fails.
    let faulty = FaultyDir::new();
    let mut engine = fresh(faulty.clone());
    faulty.arm(900);
    let mut survived = 0usize;
    for op in &ops {
        if engine.apply(op.clone()).is_err() {
            break;
        }
        survived += 1;
    }
    assert!(faulty.crashed(), "the fault injector should have fired");
    drop(engine); // the process is gone; only the disk image remains
    println!(
        "power loss after {survived}/{} applied ops ({} bytes ever written)",
        ops.len(),
        faulty.mutated(),
    );

    // Recovery: verify checksums, truncate the torn tail, load the
    // newest intact snapshot, replay the WAL suffix.
    let (mut recovered, report) = DurableResolver::recover(
        faulty.disk(),
        stream_config(),
        DurabilityConfig {
            sync_every_ops: 2,
            snapshot_every_ops: 8,
        },
    )
    .expect("recovery succeeds");
    println!(
        "recovered: snapshot seq {}, {} WAL ops replayed, {} torn bytes truncated, resuming at seq {}",
        report.snapshot_seq, report.replayed, report.torn_bytes, report.last_seq + 1,
    );
    assert!(
        report.last_seq as usize <= ops.len(),
        "recovered more ops than were ever issued"
    );

    // The durably-acknowledged prefix came back; replay what was lost.
    for op in &ops[report.last_seq as usize..] {
        recovered.apply(op.clone()).expect("replayed op applies");
    }
    assert_eq!(
        recovered.digest(),
        expected,
        "recovered + replayed state must be bit-for-bit identical"
    );
    println!(
        "digest after replaying {} lost ops: identical to the uninterrupted run",
        ops.len() - report.last_seq as usize,
    );

    // And the streaming exactness contract still holds on the
    // recovered resolver: machine pairs, densely renumbered over the
    // live corpus, equal a from-scratch batch join.
    let resolver = recovered.resolver();
    let (dense, original) = resolver.live_dataset();
    let to_dense: HashMap<RecordId, u32> = original
        .iter()
        .enumerate()
        .map(|(d, &o)| (o, d as u32))
        .collect();
    let remapped: Vec<ScoredPair> = resolver
        .ranked_pairs()
        .iter()
        .map(|sp| {
            ScoredPair::new(
                Pair::of(to_dense[&sp.pair.lo()], to_dense[&sp.pair.hi()]),
                sp.likelihood,
            )
        })
        .collect();
    let tokens = TokenTable::build(&dense);
    let batch = prefix_join(&dense, &tokens, stream_config().threshold, 0);
    assert_eq!(
        remapped, batch,
        "recovered state ≡ batch join over live corpus"
    );
    println!(
        "exactness: {} machine pairs ≡ batch join over the {} live records",
        batch.len(),
        dense.len(),
    );

    // The recovered engine keeps logging: one more correction, synced.
    recovered
        .update(RecordId(7), vec!["apple ipod shuffle 2gb green".into()])
        .expect("post-recovery update");
    recovered.sync().expect("post-recovery sync");
    println!(
        "post-recovery update logged at seq {}",
        recovered.last_seq()
    );
}

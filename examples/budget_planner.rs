//! Budget planning: pick a likelihood threshold that fits a dollar
//! budget (§9's cost/quality/latency trade-off, implemented).
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

use crowder::prelude::*;

fn main() {
    let dataset = restaurant(&RestaurantConfig::default());
    let budget = 5.0; // dollars
    println!(
        "== Budget planner: {} records, ${budget:.2} budget ==\n",
        dataset.len()
    );

    let plan = plan_budget(
        &dataset,
        &[0.5, 0.4, 0.35, 0.3, 0.25, 0.2],
        10,    // cluster size k
        3,     // assignments per HIT
        0.025, // $ per assignment (reward + fee)
        budget,
    )
    .unwrap();

    let mut table = AsciiTable::new(["threshold", "pairs", "HITs", "cost", "recall ceiling", ""]);
    for (i, p) in plan.frontier.iter().enumerate() {
        let marker = if Some(i) == plan.chosen {
            "<= chosen"
        } else {
            ""
        };
        table.row([
            format!("{:.2}", p.threshold),
            p.pairs.to_string(),
            p.hits.to_string(),
            format!("${:.2}", p.cost_dollars),
            format!("{:.1}%", p.recall_ceiling * 100.0),
            marker.to_string(),
        ]);
    }
    println!("{table}");

    match plan.chosen {
        Some(i) => {
            let p = &plan.frontier[i];
            println!(
                "chosen: τ = {:.2} — {} HITs for ${:.2}, recall ceiling {:.1}%",
                p.threshold,
                p.hits,
                p.cost_dollars,
                p.recall_ceiling * 100.0
            );
        }
        None => println!("no threshold fits the budget; raise it or accept lower recall"),
    }
}

//! Quickstart: the paper's Example 1 walk-through on the Table 1
//! products.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Stages printed: machine-pass pruning (36 → ~10 pairs), cluster-based
//! HIT generation (3 HITs at k = 4, Figure 2(b) / §5.1), simulated
//! crowdsourcing with 3 assignments per HIT, and the final matching
//! pairs (Figure 2(c)).

use crowder::prelude::*;

fn main() {
    let dataset = table1();
    println!(
        "== CrowdER quickstart: Table 1 ({} records) ==\n",
        dataset.len()
    );
    println!(
        "naive crowdsourcing would need {} pair verifications",
        dataset.candidate_pair_count()
    );

    // Stage 1: machine pass at likelihood threshold 0.3.
    let tokens = TokenTable::build(&dataset);
    let scored = prefix_join(&dataset, &tokens, 0.3, 0);
    println!("machine pass (Jaccard ≥ 0.3) keeps {} pairs:", scored.len());
    for sp in &scored {
        println!("  {}  likelihood {:.2}", sp.pair, sp.likelihood);
    }

    // Stage 2: two-tiered cluster-based HIT generation, k = 4.
    let pairs: Vec<Pair> = scored.iter().map(|s| s.pair).collect();
    let hits = TwoTieredGenerator::new().generate(&pairs, 4).unwrap();
    println!(
        "\ntwo-tiered HIT generation (k = 4) → {} cluster-based HITs:",
        hits.len()
    );
    for (i, hit) in hits.iter().enumerate() {
        let names: Vec<String> = hit.records().iter().map(|r| r.to_string()).collect();
        println!("  HIT {}: {{{}}}", i + 1, names.join(", "));
    }

    // Stages 3-4: simulated crowd + EM aggregation via the workflow.
    let crowd = WorkerPopulation::generate(&PopulationConfig::default(), 7);
    let config = HybridConfig {
        likelihood_threshold: 0.3,
        cluster_size: 4,
        ..HybridConfig::default()
    };
    let outcome = run_hybrid(&dataset, &crowd, &config).unwrap();
    println!(
        "\ncrowd: {} assignments by {} workers, {:.1} simulated minutes, ${:.3}",
        outcome.sim.assignments.len(),
        outcome.sim.workers_participated,
        outcome.sim.elapsed_minutes,
        outcome.sim.cost_dollars
    );

    println!("\nfinal matching pairs (posterior > 0.5):");
    for pair in outcome.matching_pairs() {
        let ok = if dataset.gold.is_match(&pair) {
            "correct"
        } else {
            "WRONG"
        };
        println!("  {pair}  [{ok}]");
    }
}

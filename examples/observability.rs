//! End-to-end observability: one durable streaming run lights up every
//! instrumented subsystem — the simjoin candidate funnel, the
//! incremental resolver's mutation latencies and cluster churn, the
//! write-ahead log's group-commit and fsync stats, and the crowd
//! platform's session counters — and a single Prometheus export plus
//! the event journal shows all of it. The example then asserts the
//! cross-subsystem invariants the metrics must satisfy: the WAL logged
//! at least one frame per resolver mutation, the join funnel is
//! leak-free, and the journal saw exactly one round span per round the
//! workflow reports.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use crowder::obs;
use crowder::prelude::*;

fn main() {
    // Traces and metrics are opt-in: without this, spans cost one
    // relaxed load and per-record counters are skipped entirely.
    obs::install_recorder();

    let dataset = restaurant(&RestaurantConfig::default());
    let population = WorkerPopulation::generate(&PopulationConfig::default(), 7);
    let wal_dir = std::env::temp_dir().join(format!("crowder-obs-example-{}", std::process::id()));
    let config = StreamingConfig {
        likelihood_threshold: 0.5,
        cluster_size: 6,
        batch_size: 40,
        durability: Some(DurabilityOptions::at(&wal_dir)),
        ..StreamingConfig::default()
    };

    let outcome = run_streaming(&dataset, &population, &config).expect("streaming workflow runs");
    let snap = obs::snapshot();
    let events = obs::journal_events();

    println!("{}", obs::export::prometheus_text(&snap));

    println!("journal tail ({} events total):", events.len());
    let tail = &events[events.len().saturating_sub(12)..];
    print!("{}", obs::export::journal_text(tail));

    // --- Invariant 1: durability saw every resolver mutation. Each
    // insert/remove/evidence/retraction the engine applied must have
    // logged at least one WAL frame (flushes and re-ranks log more).
    let mutations = snap.counter("stream.resolver.inserts")
        + snap.counter("stream.resolver.removes")
        + snap.counter("stream.resolver.evidence_records")
        + snap.counter("stream.resolver.retractions");
    let frames = snap.counter("durable.wal.frames_logged");
    assert!(
        frames >= mutations,
        "WAL logged {frames} frames for {mutations} resolver mutations"
    );
    assert!(mutations > 0, "the run performed no mutations");

    // --- Invariant 2: the candidate funnel is leak-free and
    // monotonically decreasing: every candidate is either pruned by
    // exactly one filter or verified, and results never exceed the
    // verified set.
    let candidates = snap.counter("simjoin.funnel.candidates");
    let pruned = snap.counter("simjoin.funnel.positional_pruned")
        + snap.counter("simjoin.funnel.space_pruned")
        + snap.counter("simjoin.funnel.signature_rejected")
        + snap.counter("simjoin.funnel.suffix_pruned");
    let verified = snap.counter("simjoin.funnel.verified");
    let results = snap.counter("simjoin.funnel.results");
    assert_eq!(
        candidates,
        pruned + verified,
        "funnel leaks candidates: {candidates} != {pruned} pruned + {verified} verified"
    );
    assert!(
        verified >= results,
        "verified {verified} < results {results}"
    );

    // --- Invariant 3: the journal carries one round span per round
    // the workflow reports, in strictly increasing sequence order.
    let round_spans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == obs::EventKind::SpanEnd && e.name == "core.stream.round_ns")
        .collect();
    assert_eq!(
        round_spans.len(),
        outcome.rounds.len(),
        "journal round spans != reported rounds"
    );
    for w in round_spans.windows(2) {
        assert!(w[0].seq < w[1].seq);
        assert!(w[0].t_ns <= w[1].t_ns);
    }

    // --- Invariant 4: every subsystem is visible in this one export.
    assert_eq!(
        snap.counter("core.stream.rounds"),
        outcome.rounds.len() as u64
    );
    assert_eq!(
        snap.counter("crowd.session.sessions"),
        outcome.rounds.len() as u64,
        "one crowd session per round"
    );
    assert!(snap.counter("crowd.session.assignments_completed") > 0);
    for hist in [
        "stream.resolver.insert_ns",
        "stream.delta.probe_ns",
        "durable.wal.fsync_ns",
        "crowd.session.assignment_latency_ms",
        "core.stream.round_ns",
    ] {
        let h = snap
            .histogram(hist)
            .unwrap_or_else(|| panic!("histogram {hist} missing from the export"));
        assert!(h.count > 0, "histogram {hist} is empty");
    }

    println!();
    println!(
        "invariants hold: {frames} WAL frames >= {mutations} mutations; \
         funnel {candidates} -> {verified} verified -> {results} results; \
         {} round spans; resolver insert p99 {} ns; wal fsync p99 {} ns; \
         assignment latency p50 {} ms",
        round_spans.len(),
        snap.histogram("stream.resolver.insert_ns").unwrap().p99(),
        snap.histogram("durable.wal.fsync_ns").unwrap().p99(),
        snap.histogram("crowd.session.assignment_latency_ms")
            .unwrap()
            .p50(),
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
}

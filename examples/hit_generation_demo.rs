//! HIT-generation shoot-out: all five cluster-HIT generators on the same
//! pair set (a miniature of the paper's Figure 10/11 comparison).
//!
//! ```sh
//! cargo run --release --example hit_generation_demo
//! ```

use crowder::prelude::*;

fn main() {
    let dataset = restaurant(&RestaurantConfig::default());
    let tokens = TokenTable::build(&dataset);
    let scored = prefix_join(&dataset, &tokens, 0.3, 0);
    let pairs: Vec<Pair> = scored.iter().map(|s| s.pair).collect();
    println!(
        "== Cluster-HIT generation on Restaurant: {} pairs above τ = 0.3 ==\n",
        pairs.len()
    );

    let generators: Vec<Box<dyn ClusterGenerator>> = vec![
        Box::new(RandomGenerator::new(1)),
        Box::new(DfsGenerator),
        Box::new(BfsGenerator),
        Box::new(ApproxGenerator::new(1)),
        Box::new(TwoTieredGenerator::new()),
    ];

    let mut table = AsciiTable::new(["generator", "k=5", "k=10", "k=15", "k=20"]);
    for generator in &generators {
        let mut cells = vec![generator.name().to_string()];
        for k in [5usize, 10, 15, 20] {
            let hits = generator.generate(&pairs, k).unwrap();
            cells.push(hits.len().to_string());
        }
        table.row(cells);
    }
    println!("{table}");
    println!("(Two-tiered should produce the fewest HITs in every column — paper Fig. 11)");
}

//! Concurrent serving: a `ResolverService` owns the incremental
//! resolver behind a bounded command queue — ingest threads push record
//! batches (retrying on explicit backpressure), a query thread runs
//! `resolve()` lookups against the live state while ingest is still in
//! flight, and a graceful shutdown hands the final resolver back for
//! the exactness check against the batch machine pass.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use crowder::prelude::*;
use crowder::serve::{ResolverService, ServeConfig, TrySubmit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const INGEST_THREADS: usize = 2;
const BATCH: usize = 8;

fn main() {
    // A Restaurant-style corpus, served instead of streamed: the
    // resolver shards its index 4 ways and sits behind a bounded queue.
    let dataset = restaurant(&RestaurantConfig::default());
    let resolver = IncrementalResolver::like(
        &dataset,
        StreamConfig {
            threshold: 0.5,
            layout: IndexLayout {
                shards: 4,
                probe_threads: 1,
            },
            ..StreamConfig::default()
        },
    );
    let service = ResolverService::in_memory(
        resolver,
        ServeConfig {
            queue_capacity: 16,
            group_commit_max: 8,
            flush_every_ops: 256,
        },
    );

    // A probe the query thread will resolve while ingest runs: the
    // fields of the first record, which is in-corpus from the first
    // accepted batch onward.
    let probe_source = dataset.records()[0].source;
    let probe_fields = dataset.records()[0].fields.clone();

    let rejections = AtomicU64::new(0);
    let queries = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);
    let total = dataset.len() as u64;
    // Arrival log: which fields got which record id — two threads race
    // for ids, so arrival order is a nondeterministic interleaving of
    // the two stripes, and the exactness check below replays *that*.
    let arrivals: Mutex<Vec<(RecordId, SourceId, Vec<String>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Ingest threads: round-robin split, batches of BATCH, explicit
        // backpressure — `TrySubmit::Full` hands the batch back and the
        // producer retries after a yield.
        for t in 0..INGEST_THREADS {
            let (service, rejections, ingested, arrivals) =
                (&service, &rejections, &ingested, &arrivals);
            let records: Vec<_> = dataset
                .records()
                .iter()
                .skip(t)
                .step_by(INGEST_THREADS)
                .map(|r| (r.source, r.fields.clone()))
                .collect();
            scope.spawn(move || {
                for chunk in records.chunks(BATCH) {
                    let mut batch = chunk.to_vec();
                    let ticket = loop {
                        match service.try_ingest(batch) {
                            TrySubmit::Accepted(ticket) => break ticket,
                            TrySubmit::Full(returned) => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                                batch = returned;
                                std::thread::yield_now();
                            }
                            TrySubmit::Closed(_) => unreachable!("service open"),
                        }
                    };
                    let receipt = ticket.wait().expect("batch applies");
                    let mut log = arrivals.lock().unwrap();
                    for (id, (source, fields)) in receipt.records.iter().zip(chunk) {
                        log.push((*id, *source, fields.clone()));
                    }
                    drop(log);
                    ingested.fetch_add(receipt.records.len() as u64, Ordering::Relaxed);
                }
            });
        }

        // Query thread: resolve the probe against whatever prefix of
        // the ingest history has been applied — views are
        // prefix-consistent and applied_ops is monotone.
        let (service, queries, ingested) = (&service, &queries, &ingested);
        let query_fields = probe_fields.clone();
        scope.spawn(move || {
            let mut last_ops = 0;
            while ingested.load(Ordering::Relaxed) < total {
                let view = service
                    .resolve(probe_source, query_fields.clone())
                    .expect("schema matches");
                assert!(view.applied_ops >= last_ops, "applied_ops went backwards");
                last_ops = view.applied_ops;
                queries.fetch_add(1, Ordering::Relaxed);
            }
        });
    });

    // All ingest acked: one final resolve sees the whole corpus.
    let view = service
        .resolve(probe_source, probe_fields.clone())
        .expect("schema matches");
    assert_eq!(view.applied_ops, total);
    assert!(
        view.matches.iter().any(|m| m.similarity == 1.0),
        "the probe's own record is an exact match"
    );

    let report = service.shutdown().expect("clean drain");
    assert_eq!(report.applied_ops, total);

    // The exactness contract survives the concurrent service: replay
    // the logged arrival order into a batch dataset — whatever
    // interleaving the two producers raced into, the served corpus
    // joins bit-identically to a batch prefix_join over it.
    let mut arrivals = arrivals.into_inner().unwrap();
    arrivals.sort_by_key(|(id, _, _)| *id);
    let mut replay = Dataset::new(
        dataset.name.clone(),
        dataset.schema.clone(),
        dataset.pair_space,
    );
    for (id, source, fields) in arrivals {
        let got = replay.push_record(source, fields).expect("schema matches");
        assert_eq!(got, id, "arrival ids are dense and gapless");
    }
    let tokens = TokenTable::build(&replay);
    let batch = prefix_join(&replay, &tokens, 0.5, 0);
    assert_eq!(
        report.resolver.ranked_pairs(),
        batch,
        "served ≡ batch machine pass"
    );

    println!(
        "served {} records over {} ingest threads: {} pairs (≡ batch join: verified)",
        total,
        INGEST_THREADS,
        batch.len()
    );
    println!(
        "{} concurrent queries answered mid-ingest; {} clusters in the final view; \
         {} backpressure rejections retried losslessly",
        queries.load(Ordering::Relaxed),
        view.clusters.len(),
        rejections.load(Ordering::Relaxed),
    );
}

//! Data-cleaning scenario: deduplicate the Restaurant dataset.
//!
//! ```sh
//! cargo run --release --example restaurant_cleaning
//! ```
//!
//! Reproduces the paper's §7.3 Restaurant configuration: simjoin at
//! τ = 0.35, two-tiered cluster HITs with k = 10, three assignments,
//! Dawid–Skene aggregation — then reports precision/recall of the final
//! output against the gold standard.

use crowder::prelude::*;

fn main() {
    let dataset = restaurant(&RestaurantConfig::default());
    println!(
        "== Restaurant cleaning: {} records, {} true duplicate pairs ==\n",
        dataset.len(),
        dataset.gold.len()
    );

    // Likelihood-threshold sweep (Table 2(a) analogue).
    let tokens = TokenTable::build(&dataset);
    let rows = threshold_sweep(&dataset, &tokens, &[0.5, 0.4, 0.35, 0.3, 0.2]);
    let mut table = AsciiTable::new(["threshold", "pairs kept", "matches", "recall"]);
    for r in &rows {
        table.row([
            format!("{:.2}", r.threshold),
            r.total_pairs.to_string(),
            r.matches.to_string(),
            format!("{:.1}%", r.recall * 100.0),
        ]);
    }
    println!("{table}");

    // Hybrid run at the paper's τ = 0.35.
    let crowd = WorkerPopulation::generate(&PopulationConfig::default(), 2024);
    let config = HybridConfig {
        likelihood_threshold: 0.35,
        cluster_size: 10,
        crowd: CrowdConfig {
            qualification: Some(QualificationConfig::default()),
            ..CrowdConfig::default()
        },
        ..HybridConfig::default()
    };
    let outcome = run_hybrid(&dataset, &crowd, &config).unwrap();
    println!(
        "hybrid(QT): {} pairs → {} cluster HITs → {} assignments, ${:.2}, {:.1} h simulated",
        outcome.candidate_pairs.len(),
        outcome.hits.len(),
        outcome.sim.assignments.len(),
        outcome.sim.cost_dollars,
        outcome.sim.elapsed_minutes / 60.0
    );

    let found = outcome.matching_pairs();
    let correct = found.iter().filter(|p| dataset.gold.is_match(p)).count();
    let precision = correct as f64 / found.len().max(1) as f64;
    let recall = correct as f64 / dataset.gold.len() as f64;
    println!(
        "\nfinal output: {} pairs declared duplicates — precision {:.1}%, recall {:.1}%",
        found.len(),
        precision * 100.0,
        recall * 100.0
    );
}

//! The paper's §1 CrowdSQL query, as a typed API:
//!
//! ```sql
//! SELECT p.id, q.id FROM product p, product q
//! WHERE p.product_name ~= q.product_name;
//! ```
//!
//! ```sh
//! cargo run --release --example crowdsql_join
//! ```

use crowder::prelude::*;

fn main() {
    let dataset = table1();
    let crowd = WorkerPopulation::generate(&PopulationConfig::default(), 5);

    println!("SELECT p.id, q.id FROM product p, product q");
    println!("WHERE  p.product_name ~= q.product_name;\n");

    let result = CrowdJoin::new()
        .on_attribute("product_name")
        .threshold(0.3)
        .cluster_size(4)
        .run(&dataset, &crowd)
        .expect("query executes");

    println!(
        "-- machine pass kept {} of {} pairs; {} HITs; ${:.2} crowd cost\n",
        result.candidates,
        dataset.candidate_pair_count(),
        result.hits,
        result.cost_dollars
    );
    println!(" p.id | q.id | product_name (p)");
    println!("------+------+------------------");
    for pair in &result.matches {
        let name = dataset.records()[pair.lo().index()].field(0).unwrap_or("?");
        println!("  {:>3} | {:>4} | {}", pair.lo(), pair.hi(), name);
    }
    println!("\n({} rows)", result.matches.len());
}

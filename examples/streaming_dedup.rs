//! Streaming deduplication: records arrive in batches, the incremental
//! resolver delta-joins each arrival against the corpus, and only the
//! clusters that moved get their HITs regenerated — crowd sessions run
//! between batches on the fresh HITs alone.
//!
//! ```text
//! cargo run --release --example streaming_dedup
//! ```

use crowder::prelude::*;

fn main() {
    // A Restaurant-style corpus arriving 40 records at a time.
    let dataset = restaurant(&RestaurantConfig::default());
    let population = WorkerPopulation::generate(&PopulationConfig::default(), 7);
    let config = StreamingConfig {
        likelihood_threshold: 0.5,
        cluster_size: 6,
        batch_size: 40,
        ..StreamingConfig::default()
    };

    let outcome = run_streaming(&dataset, &population, &config).expect("streaming workflow runs");

    println!(
        "streamed {} records in {} rounds",
        dataset.len(),
        outcome.rounds.len()
    );
    println!();
    println!("round  arrive  pairs  dirty  retired  created  stable  assign     cost");
    for r in &outcome.rounds {
        println!(
            "{:>5}  {:>6}  {:>5}  {:>5}  {:>7}  {:>7}  {:>6}  {:>6}  ${:>6.2}",
            r.round,
            r.arrived,
            r.new_pairs,
            r.dirty_clusters,
            r.hits_retired,
            r.hits_created,
            r.hits_stable,
            r.assignments,
            r.cost_dollars,
        );
    }

    // The exactness contract: the streamed pair set is bit-identical to
    // a batch prefix_join over the same corpus.
    let tokens = TokenTable::build(&dataset);
    let batch = prefix_join(&dataset, &tokens, config.likelihood_threshold, 0);
    assert_eq!(
        outcome.resolver.ranked_pairs(),
        batch,
        "streaming ≡ batch machine pass"
    );

    let matches = outcome.matching_pairs();
    let correct = matches.iter().filter(|p| dataset.gold.is_match(p)).count();
    println!();
    println!(
        "machine pass: {} candidate pairs (≡ batch join: verified)",
        batch.len()
    );
    println!(
        "crowd: {} assignments, ${:.2}, {} matches output ({} correct of {} gold)",
        outcome.total_assignments,
        outcome.total_cost_dollars,
        matches.len(),
        correct,
        dataset.gold.len(),
    );
    println!(
        "live HITs at shutdown: {}, epochs: {}",
        outcome.resolver.live_hits().len(),
        outcome.resolver.epochs(),
    );
}

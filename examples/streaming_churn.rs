//! Fault-tolerant streaming ER under churn: records arrive in batches
//! *and leave again* (GDPR-style deletions mid-run), the crowd contains
//! adversarial workers (a systematic liar, random flippers, sleepers),
//! crowd sessions are time-boxed so unfinished assignments carry over
//! across HIT regenerations, and previously-recorded answers get
//! retracted. The signed evidence ledger absorbs all of it: edges
//! commit only when net weighted evidence clears the margin, conflicting
//! answers decommit them again (splitting clusters and re-publishing
//! HITs), and the machine pair set stays bit-identical to a batch join
//! over whatever corpus is *currently live*.
//!
//! ```text
//! cargo run --release --example streaming_churn
//! ```

use crowder::prelude::*;
use std::collections::HashMap;

fn main() {
    // A Restaurant-style corpus arriving 40 records at a time, judged by
    // a crowd where ~15% of workers are adversarial — and they pass the
    // qualification test, because they answer gold questions honestly.
    let dataset = restaurant(&RestaurantConfig::default());
    let population = WorkerPopulation::generate(
        &PopulationConfig {
            liar_fraction: 0.05,
            flipper_fraction: 0.05,
            sleeper_fraction: 0.05,
            ..PopulationConfig::default()
        },
        7,
    );

    // Mid-run faults: three records are deleted after their clusters
    // formed, and one pair's crowd evidence is retracted wholesale.
    let faults = FaultPlan {
        deletions: vec![(2, RecordId(3)), (3, RecordId(17)), (4, RecordId(55))],
        retractions: vec![(3, Pair::of(0, 1)), (4, Pair::of(10, 12))],
    };
    let config = StreamingConfig {
        likelihood_threshold: 0.5,
        cluster_size: 6,
        batch_size: 40,
        crowd: CrowdConfig {
            // Time-boxed sessions: assignments still open at the
            // deadline carry into the next round instead of being lost.
            session_deadline_min: Some(30.0),
            ..CrowdConfig::default()
        },
        faults,
        ..StreamingConfig::default()
    };

    let outcome = run_streaming(&dataset, &population, &config).expect("streaming workflow runs");

    println!(
        "streamed {} records in {} rounds ({} deleted mid-run)",
        dataset.len(),
        outcome.rounds.len(),
        outcome.resolver.removed(),
    );
    println!();
    println!(
        "round  arrive  del  rtr  pairs  retired  created  stable  assign  carry  commit  decommit  merge  split"
    );
    for r in &outcome.rounds {
        println!(
            "{:>5}  {:>6}  {:>3}  {:>3}  {:>5}  {:>7}  {:>7}  {:>6}  {:>6}  {:>5}  {:>6}  {:>8}  {:>5}  {:>5}",
            r.round,
            r.arrived,
            r.deleted,
            r.retracted,
            r.new_pairs,
            r.hits_retired,
            r.hits_created,
            r.hits_stable,
            r.assignments,
            r.carried_assignments,
            r.edges_committed,
            r.edges_decommitted,
            r.cluster_merges,
            r.cluster_splits,
        );
    }

    // The exactness contract *under deletions*: the streamed pair set,
    // re-numbered through the live-corpus dense mapping, is
    // bit-identical to a batch prefix_join over only the live records.
    let (dense, original) = outcome.resolver.live_dataset();
    let to_dense: HashMap<RecordId, u32> = original
        .iter()
        .enumerate()
        .map(|(d, &o)| (o, d as u32))
        .collect();
    let remapped: Vec<ScoredPair> = outcome
        .resolver
        .ranked_pairs()
        .iter()
        .map(|sp| {
            ScoredPair::new(
                Pair::of(to_dense[&sp.pair.lo()], to_dense[&sp.pair.hi()]),
                sp.likelihood,
            )
        })
        .collect();
    let tokens = TokenTable::build(&dense);
    let batch = prefix_join(&dense, &tokens, config.likelihood_threshold, 0);
    assert_eq!(
        remapped, batch,
        "streaming-under-deletions ≡ batch over live corpus"
    );

    let committed = outcome.resolver.committed_pairs();
    let wrong = outcome.wrong_merges(&dataset.gold);
    let matches = outcome.matching_pairs();
    let correct = matches.iter().filter(|p| dataset.gold.is_match(p)).count();
    println!();
    println!(
        "machine pass over live corpus: {} pairs (≡ batch join: verified)",
        batch.len()
    );
    println!(
        "crowd: {} assignments, ${:.2}, {} matches output ({} correct of {} gold)",
        outcome.total_assignments,
        outcome.total_cost_dollars,
        matches.len(),
        correct,
        dataset.gold.len(),
    );
    println!(
        "evidence ledger: {} committed edges, {} surviving wrong merges despite adversaries",
        committed.len(),
        wrong.len(),
    );
    println!(
        "final flush: {} HITs retired, {} created; live HITs at shutdown: {}",
        outcome.final_hits_retired,
        outcome.final_hits_created,
        outcome.resolver.live_hits().len(),
    );
}
